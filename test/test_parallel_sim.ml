(* The conservative parallel engine and its determinism-equivalence
   guarantee: partition routing, window synchronization, the Domain pool,
   and — the headline — byte-identical fixed-seed runs for every
   registered scheme at --sim-domains 1, 2 and 4. *)

module Engine = Dangers_sim.Engine
module Heap = Dangers_sim.Heap
module Partition = Dangers_sim.Partition
module Par_engine = Dangers_sim.Par_engine
module Observe = Dangers_sim.Observe
module Trace_export = Dangers_sim.Trace_export
module Domain_pool = Dangers_util.Domain_pool
module Obs = Dangers_obs.Metrics
module Json = Dangers_obs.Json
module Params = Dangers_analytic.Params
module Scheme = Dangers_experiments.Scheme
module Sweep = Dangers_runner.Sweep
module Export = Dangers_runner.Export
module Par_eager = Dangers_replication.Par_eager

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* --- Engine.next_time: the window bound must skip cancelled roots --- *)

let test_next_time_skips_cancelled () =
  let e = Engine.create () in
  checkb "empty" true (Engine.next_time e = None);
  let first = Engine.schedule e ~delay:1. ignore in
  ignore (Engine.schedule e ~delay:2. ignore);
  checkf "min" 1. (Option.get (Engine.next_time e));
  Engine.cancel e first;
  checkf "cancelled root skipped" 2. (Option.get (Engine.next_time e));
  ignore (Engine.step e);
  checkb "drained" true (Engine.next_time e = None);
  (* next_time pops dead roots but must not fire anything *)
  checki "no cancelled event fired" 1 (Engine.events_fired e)

(* --- Heap lifecycle: clear and pop must not pin dead closures --- *)

let weak_of_list xs =
  let w = Weak.create (List.length xs) in
  List.iteri (fun i x -> Weak.set w i (Some x)) xs;
  w

let live w =
  let n = ref 0 in
  for i = 0 to Weak.length w - 1 do
    if Weak.check w i then incr n
  done;
  !n

let test_clear_releases_elements () =
  let h = Heap.create ~cmp:(fun (a, _) (b, _) -> Int.compare a b) () in
  let boxed = List.init 64 (fun i -> (i, ref i)) in
  let w = weak_of_list boxed in
  List.iter (Heap.push h) boxed;
  Heap.clear h;
  Gc.full_major ();
  (* the capacity-preserving clear may keep every slot aliased to one
     element; everything else must be gone *)
  checkb
    (Printf.sprintf "at most one element survives clear (%d live)" (live w))
    true (live w <= 1);
  checki "cleared" 0 (Heap.length h);
  checkb "capacity kept" true (Heap.capacity h >= 64)

let test_pop_releases_slot () =
  let h = Heap.create ~cmp:(fun (a, _) (b, _) -> Int.compare a b) () in
  let boxed = List.init 16 (fun i -> (i, ref i)) in
  let w = weak_of_list boxed in
  List.iter (Heap.push h) boxed;
  while not (Heap.is_empty h) do
    ignore (Heap.pop h)
  done;
  Gc.full_major ();
  checkb
    (Printf.sprintf "popped elements collectable (%d live)" (live w))
    true (live w <= 1)

(* --- Partition router: deterministic merge and the conservative check --- *)

let test_router_merge_order () =
  let r = Partition.create ~parts:3 ~lookahead:0.5 in
  (* same time from two sources, plus two posts from one source: merge
     order is (time, src, per-source seq), nothing else *)
  Partition.post r ~src:2 ~dst:0 ~time:1.0 "c";
  Partition.post r ~src:1 ~dst:0 ~time:1.0 "b1";
  Partition.post r ~src:1 ~dst:0 ~time:1.0 "b2";
  Partition.post r ~src:0 ~dst:1 ~time:0.75 "a";
  let log = ref [] in
  Partition.drain r ~deliver:(fun p -> log := p.Partition.p_msg :: !log);
  checks "merge order" "a,b1,b2,c" (String.concat "," (List.rev !log));
  checki "delivered" 4 (Partition.delivered_total r)

let test_router_conservative_violation () =
  let r = Partition.create ~parts:2 ~lookahead:0.5 in
  Partition.advance r ~part:0 ~time:10.;
  Partition.advance r ~part:1 ~time:10.;
  Partition.post r ~src:0 ~dst:1 ~time:9. "late";
  checkb "delivery into the past rejected" true
    (match Partition.drain r ~deliver:ignore with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_router_safe_time () =
  let r = Partition.create ~parts:3 ~lookahead:0.25 in
  Partition.advance r ~part:1 ~time:4.;
  Partition.advance r ~part:2 ~time:6.;
  (* dst 0's bound is the slowest *other* partition plus lookahead *)
  checkf "safe time" 4.25 (Partition.safe_time r ~dst:0);
  checkf "excludes self" 0.25 (Partition.safe_time r ~dst:1);
  let solo = Partition.create ~parts:1 ~lookahead:0.25 in
  checkb "single partition is unbounded" true
    (Partition.safe_time solo ~dst:0 = infinity)

(* --- QCheck: arbitrary cross-partition schedules ---

   Each case is a batch of (src, dst, delay) sends fanned out from a
   driver event per partition at time 0. Delivery times are tie-free by
   construction, so the global delivery order the barrier produces must
   equal the order a single serial heap would pop — and no delivery may
   precede the receiver's completed horizon. *)

let router_order_prop =
  let gen =
    QCheck.list_of_size
      (QCheck.Gen.int_range 1 60)
      QCheck.(triple (int_range 0 3) (int_range 0 3) (int_range 1 999))
  in
  QCheck.Test.make ~count:100
    ~name:"par engine delivers in serial-heap order, never early" gen
    (fun ops ->
      let parts = 4 in
      let lookahead = 0.05 in
      (* unique fractional part per op index: no two delivery times tie *)
      let delay i units = lookahead +. (float_of_int units /. 1000.) +. (float_of_int i *. 1e-7) in
      let t = Par_engine.create ~parts ~lookahead () in
      let log = ref [] in
      (* the handler runs at the barrier in drain order — the parallel
         engine's global serialization of cross-partition traffic *)
      Par_engine.set_handler t (fun ~src:_ ~dst ~time () ->
          let e = Par_engine.engine t dst in
          if time < Engine.now e then
            QCheck.Test.fail_report "delivered before the receiver's clock";
          log := time :: !log;
          ignore (Engine.schedule_at e ~time ignore));
      for p = 0 to parts - 1 do
        ignore
          (Engine.schedule (Par_engine.engine t p) ~delay:0. (fun () ->
               List.iteri
                 (fun i (src, dst, units) ->
                   if src = p && src <> dst then
                     Par_engine.post t ~src ~dst ~delay:(delay i units) ())
                 ops))
      done;
      Par_engine.run t;
      let expected =
        let h = Heap.create ~cmp:Float.compare () in
        List.iteri
          (fun i (src, dst, units) ->
            if src <> dst then Heap.push h (delay i units))
          ops;
        Heap.to_sorted_list h
      in
      List.rev !log = expected)

(* --- Windows on a real pool: identical at any pool size --- *)

(* A deterministic two-level scatter: every delivered token forwards to
   the next partition until its hop budget runs out, so the run crosses
   many windows and every partition both sends and receives. *)
let run_scatter ~pool_size =
  let parts = 4 in
  let t = Par_engine.create ~parts ~lookahead:0.1 () in
  Par_engine.set_handler t (fun ~src:_ ~dst ~time hops ->
      ignore
        (Engine.schedule_at (Par_engine.engine t dst) ~time (fun () ->
             if hops > 0 then begin
               Par_engine.post t ~src:dst ~dst:((dst + 1) mod parts)
                 ~delay:0.1 (hops - 1);
               Par_engine.post t ~src:dst ~dst:((dst + 3) mod parts)
                 ~delay:0.15 (hops / 2)
             end)));
  for p = 0 to parts - 1 do
    Par_engine.post t ~src:p ~dst:((p + 1) mod parts) ~delay:0.1 12
  done;
  let run () = Par_engine.run t in
  (if pool_size <= 1 then run ()
   else begin
     let pool = Domain_pool.create ~workers:pool_size in
     Fun.protect ~finally:(fun () -> Domain_pool.shutdown pool) (fun () ->
         Par_engine.run ~pool t)
   end);
  let per_engine p =
    let e = Par_engine.engine t p in
    (Engine.events_fired e, Engine.queue_high_water e, Engine.now e)
  in
  ( List.init parts per_engine,
    ( Par_engine.windows t,
      Par_engine.stalls t,
      Par_engine.posts_total t,
      Par_engine.delivered_total t ) )

let test_pool_sizes_equivalent () =
  let serial = run_scatter ~pool_size:1 in
  List.iter
    (fun pool_size ->
      checkb
        (Printf.sprintf "pool=%d equals pool=1" pool_size)
        true
        (run_scatter ~pool_size = serial))
    [ 2; 4 ];
  let engines, (windows, _, posts, delivered) = serial in
  checkb "crossed several windows" true (windows > 10);
  checki "no message lost" posts delivered;
  List.iter
    (fun (fired, hw, _) ->
      checkb "every partition fired" true (fired > 0);
      checkb "high water tracked" true (hw >= 1))
    engines

let test_domain_pool_basics () =
  let pool = Domain_pool.create ~workers:3 in
  Fun.protect ~finally:(fun () -> Domain_pool.shutdown pool) (fun () ->
      checki "size" 3 (Domain_pool.size pool);
      let hits = Array.make 17 0 in
      Domain_pool.parallel_for pool ~n:17 ~f:(fun i ->
          hits.(i) <- hits.(i) + 1);
      checkb "each index exactly once" true
        (Array.for_all (fun h -> h = 1) hits);
      checkb "failure re-raised" true
        (match
           Domain_pool.parallel_for pool ~n:8 ~f:(fun i ->
               if i = 5 then failwith "boom")
         with
        | exception Failure _ -> true
        | () -> false);
      (* the pool survives a failed round *)
      Domain_pool.parallel_for pool ~n:4 ~f:ignore)

(* --- The tentpole: every scheme, byte-identical at sim-domains 1/2/4 ---

   One observed run per (scheme, sim-domains); the comparison key is
   everything a run externalizes — summary, diagnostics, deadlock counts
   (via the export record), the metrics snapshot and the trace export —
   minus wall-clock phase profiles, which are honest nondeterminism. *)

let strip_phases snap = { snap with Obs.s_phases = [] }

let scheme_fingerprint ~sim_domains name =
  let params =
    { Params.default with db_size = 300; nodes = 3; tps = 4.; actions = 3 }
  in
  let task =
    Sweep.Scheme_task
      { scheme = name; spec = Scheme.spec params; seed = 42; warmup = 1.;
        span = 6. }
  in
  match Sweep.run_observed ~sim_domains ~trace:true [ task ] with
  | [ (item, o) ] ->
      String.concat "\n"
        [
          Export.to_jsonl [ Export.record_of_item item ];
          Json.to_string (Obs.snapshot_to_json (strip_phases o.o_snapshot));
          Trace_export.to_jsonl (Option.to_list o.o_trace);
        ]
  | _ -> assert false

let test_schemes_equivalent_across_domains () =
  List.iter
    (fun scheme ->
      let name = Scheme.name scheme in
      let serial = scheme_fingerprint ~sim_domains:1 name in
      List.iter
        (fun sim_domains ->
          checks
            (Printf.sprintf "%s: sim-domains=%d byte-identical to 1" name
               sim_domains)
            serial
            (scheme_fingerprint ~sim_domains name))
        [ 2; 4 ])
    Scheme.all

(* --- queue_high_water pin: engine reuse across domain budgets ---

   The partitioned scheme reports each node engine's high-water mark as a
   max-merged gauge. It is a pure function of the event schedule, so
   rerunning the same seed under different domain budgets — partitions
   remapped onto 1, 2 then 4 domains — must reproduce it exactly. *)

let par_eager_high_water ~domains =
  let registry = Obs.create () in
  Observe.with_observation ~obs:registry (fun () ->
      let params =
        { Params.default with db_size = 200; nodes = 4; tps = 3. }
      in
      let t = Par_eager.create params ~seed:11 in
      Par_eager.start t;
      Par_eager.measure ~domains t ~warmup:1. ~span:8.;
      Par_eager.quiesce ~domains t);
  Option.get (Obs.snapshot_gauge (Obs.snapshot registry) "engine.queue_high_water")

let test_queue_high_water_pinned_across_domains () =
  let serial = par_eager_high_water ~domains:1 in
  checkb "meaningful backlog" true (serial >= 4.);
  List.iter
    (fun domains ->
      checkf
        (Printf.sprintf "domains=%d high water" domains)
        serial
        (par_eager_high_water ~domains))
    [ 2; 4 ]

(* --- Par_eager directly: stores, clocks and diagnostics line up --- *)

let par_eager_full_state ~domains =
  let params = { Params.default with db_size = 150; nodes = 4; tps = 3. } in
  let t = Par_eager.create params ~seed:5 in
  Par_eager.start t;
  Par_eager.measure ~domains t ~warmup:1. ~span:10.;
  Par_eager.quiesce ~domains t;
  let summary = Format.asprintf "%a" Par_eager.Repl_stats.pp_summary (Par_eager.summary t) in
  let fingerprints = List.init 4 (Par_eager.store_fingerprint t) in
  (summary, fingerprints, Par_eager.diagnostics t, Par_eager.converged t)

let test_par_eager_state_equivalent () =
  let (summary, fingerprints, diags, converged) as serial =
    par_eager_full_state ~domains:1
  in
  checkb "replicas converged after quiesce" true converged;
  checkb "one-copy state reached" true (List.length fingerprints = 4);
  checkb "scheme made progress" true
    (String.length summary > 0
    && List.assoc "channel_posts" diags > 0.
    && List.assoc "windows" diags > 0.);
  List.iter
    (fun domains ->
      checkb
        (Printf.sprintf "domains=%d full state equals serial" domains)
        true
        (par_eager_full_state ~domains = serial))
    [ 2; 4 ]

let suite =
  [
    Alcotest.test_case "next_time skips cancelled roots" `Quick
      test_next_time_skips_cancelled;
    Alcotest.test_case "heap clear releases elements" `Quick
      test_clear_releases_elements;
    Alcotest.test_case "heap pop releases slot" `Quick test_pop_releases_slot;
    Alcotest.test_case "router merge order" `Quick test_router_merge_order;
    Alcotest.test_case "router rejects past delivery" `Quick
      test_router_conservative_violation;
    Alcotest.test_case "router safe time" `Quick test_router_safe_time;
    QCheck_alcotest.to_alcotest router_order_prop;
    Alcotest.test_case "pool sizes equivalent" `Slow test_pool_sizes_equivalent;
    Alcotest.test_case "domain pool basics" `Quick test_domain_pool_basics;
    Alcotest.test_case "all schemes byte-identical at sim-domains 1/2/4" `Slow
      test_schemes_equivalent_across_domains;
    Alcotest.test_case "queue high water pinned across domains" `Slow
      test_queue_high_water_pinned_across_domains;
    Alcotest.test_case "par-eager state equivalent across domains" `Slow
      test_par_eager_state_equivalent;
  ]
