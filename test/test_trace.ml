(* Trace ring buffer, its wiring through the executor and network, and the
   structured export pipeline (JSONL + Chrome trace-event conversion). *)

module Trace = Dangers_sim.Trace
module Trace_export = Dangers_sim.Trace_export
module Json = Dangers_obs.Json
module Engine = Dangers_sim.Engine
module Clock = Dangers_runtime.Clock
module Executor = Dangers_txn.Executor
module Txn_id = Dangers_txn.Txn_id
module Lock_manager = Dangers_lock.Lock_manager
module Network = Dangers_net.Network
module Delay = Dangers_net.Delay
module Rng = Dangers_util.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let test_ring_basics () =
  let t = Trace.create ~capacity:3 () in
  for i = 1 to 5 do
    Trace.record t ~now:(float_of_int i) (Trace.Note (string_of_int i))
  done;
  checki "recorded all" 5 (Trace.recorded t);
  checki "dropped oldest" 2 (Trace.dropped t);
  (match Trace.entries t with
  | [ a; b; c ] ->
      Alcotest.check (Alcotest.float 1e-9) "oldest retained" 3. a.Trace.at;
      Alcotest.check (Alcotest.float 1e-9) "then" 4. b.Trace.at;
      Alcotest.check (Alcotest.float 1e-9) "newest" 5. c.Trace.at
  | _ -> Alcotest.fail "three entries expected");
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Trace.create: capacity must be positive") (fun () ->
      ignore (Trace.create ~capacity:0 ()))

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

let test_pp_smoke () =
  let t = Trace.create () in
  Trace.record t ~now:0.5 (Trace.Deadlock_victim { owner = 3; cycle = [ 3; 7 ] });
  Trace.record t ~now:0.6 (Trace.Message_sent { src = 0; dst = 1 });
  let rendered = Format.asprintf "%a" Trace.pp t in
  checkb "mentions the victim" true
    (String.length rendered > 0 && contains rendered "t3 killed (cycle 3->7)")

let test_executor_emits () =
  let engine = Engine.create () in
  let tracer = Trace.create () in
  Engine.set_tracer engine (Some tracer);
  let executor =
    Executor.create ~clock:(Clock.of_engine engine) ~locks:(Lock_manager.create ()) ~action_time:0.01 ()
  in
  let gen = Txn_id.Gen.create () in
  let submit steps =
    Executor.run executor ~owner:(Txn_id.Gen.next gen)
      ~steps
      ~on_commit:(fun () -> ())
      ~on_deadlock:(fun ~cycle:_ -> ())
  in
  submit [ Executor.update_step ~resource:1 ];
  submit [ Executor.update_step ~resource:1 ];
  Engine.run engine;
  let count predicate = List.length (Trace.matching tracer predicate) in
  checki "two txns started" 2
    (count (function Trace.Txn_started _ -> true | _ -> false));
  checki "two commits" 2
    (count (function Trace.Txn_committed _ -> true | _ -> false));
  checki "one wait" 1
    (count (function Trace.Lock_waited _ -> true | _ -> false));
  checki "one immediate grant" 1
    (count (function Trace.Lock_granted _ -> true | _ -> false))

let test_network_emits () =
  let engine = Engine.create () in
  let tracer = Trace.create () in
  Engine.set_tracer engine (Some tracer);
  let network =
    Network.create ~clock:(Clock.of_engine engine) ~rng:(Rng.create ~seed:1) ~delay:Delay.Zero ~nodes:2
      ~deliver:(fun ~src:_ ~dst:_ () -> ()) ()
  in
  Network.set_connected network ~node:1 false;
  Network.send network ~src:0 ~dst:1 ();
  Network.set_connected network ~node:1 true;
  Engine.run engine;
  let kinds =
    List.map
      (fun e ->
        match e.Trace.event with
        | Trace.Node_disconnected _ -> "down"
        | Trace.Message_sent _ -> "sent"
        | Trace.Message_parked _ -> "parked"
        | Trace.Node_connected _ -> "up"
        | Trace.Message_delivered _ -> "delivered"
        | _ -> "other")
      (Trace.entries tracer)
  in
  Alcotest.check (Alcotest.list Alcotest.string) "lifecycle order"
    [ "down"; "sent"; "parked"; "up"; "delivered" ]
    kinds

let test_no_tracer_no_events () =
  let engine = Engine.create () in
  checkb "no tracer attached" true (Engine.tracer engine = None);
  (* Just exercising the no-op path. *)
  Engine.trace engine (Trace.Note "ignored");
  Engine.set_tracer engine (Some (Trace.create ()));
  Engine.trace engine (Trace.Note "kept");
  match Engine.tracer engine with
  | Some t -> checki "one event" 1 (Trace.recorded t)
  | None -> Alcotest.fail "tracer lost"

let test_iter_fold_wrapped () =
  let t = Trace.create ~capacity:4 () in
  for i = 1 to 6 do
    Trace.record t ~now:(float_of_int i) (Trace.Note (string_of_int i))
  done;
  checki "retained" 4 (Trace.retained t);
  let folded =
    List.rev (Trace.fold t ~init:[] (fun acc e -> e.Trace.at :: acc))
  in
  Alcotest.check
    (Alcotest.list (Alcotest.float 1e-9))
    "fold oldest-first after wrap" [ 3.; 4.; 5.; 6. ] folded;
  let iterated = ref [] in
  Trace.iter t (fun e -> iterated := e :: !iterated);
  checkb "iter agrees with entries" true
    (List.rev !iterated = Trace.entries t)

(* One value per constructor; the length check below trips when someone
   adds an event without extending the export tests. *)
let all_events =
  [
    Trace.Txn_started { owner = 1 };
    Trace.Lock_granted { owner = 1; resource = 2 };
    Trace.Lock_waited { owner = 1; resource = 2 };
    Trace.Deadlock_victim { owner = 1; cycle = [ 1; 2; 3 ] };
    Trace.Txn_committed { owner = 1 };
    Trace.Message_sent { src = 0; dst = 1 };
    Trace.Message_delivered { src = 0; dst = 1 };
    Trace.Message_parked { at = 1 };
    Trace.Node_connected { node = 1 };
    Trace.Node_disconnected { node = 1 };
    Trace.Message_dropped { src = 0; dst = 1 };
    Trace.Message_duplicated { src = 0; dst = 1 };
    Trace.Node_crashed { node = 1 };
    Trace.Node_restarted { node = 1 };
    Trace.Partition_started { blocks = 2 };
    Trace.Partition_healed;
    Trace.Note "marker";
  ]

let test_every_event_pp_and_json () =
  checki "every constructor covered" 17 (List.length all_events);
  List.iter
    (fun event ->
      let rendered = Format.asprintf "%a" Trace.pp_event event in
      checkb "pp renders something" true (String.length rendered > 0);
      let j = Trace_export.event_to_json event in
      checkb "json round-trips" true (Trace_export.event_of_json j = event);
      (* And through the actual text representation too. *)
      checkb "text round-trips" true
        (Trace_export.event_of_json (Json.of_string (Json.to_string j))
        = event))
    all_events;
  Alcotest.check_raises "unknown tag rejected"
    (Json.Parse_error "unknown trace event tag \"bogus\"") (fun () ->
      ignore (Trace_export.event_of_json (Json.Obj [ ("ev", Json.Str "bogus") ])))

let test_jsonl_roundtrip () =
  let t = Trace.create () in
  List.iteri
    (fun i event -> Trace.record t ~now:(0.125 *. float_of_int i) event)
    all_events;
  let sections =
    [
      Trace_export.section ~label:"scheme:eager-group" ~seed:42 t;
      (* A header-only section, as a sweep task with no retained events. *)
      {
        Trace_export.label = "experiment:empty";
        seed = 7;
        recorded = 0;
        dropped = 0;
        entries = [];
      };
    ]
  in
  let text = Trace_export.to_jsonl sections in
  checkb "round-trips" true (Trace_export.of_jsonl text = sections);
  (match Trace_export.validate text with
  | Ok (nsections, nevents) ->
      checki "two sections" 2 nsections;
      checki "all events" 17 nevents
  | Error msg -> Alcotest.fail ("expected valid trace: " ^ msg));
  (match
     Trace_export.validate {|{"kind":"event","t":0,"ev":"note","text":"x"}|}
   with
  | Error msg -> checkb "event before header" true (contains msg "header")
  | Ok _ -> Alcotest.fail "headerless trace accepted");
  match
    Trace_export.validate
      {|{"schema":"dangers/trace/v0","kind":"header","label":"x","seed":1,"recorded":0,"dropped":0}|}
  with
  | Error msg -> checkb "schema checked" true (contains msg "trace/v0")
  | Ok _ -> Alcotest.fail "wrong schema accepted"

(* The Chrome converter, pinned against a committed golden file: the input
   covers duration-event pairing, FIFO flow matching, instants, and the
   close-dangling-transactions pass (owner 2 never commits). *)
let golden_input =
  String.concat "\n"
    [
      {|{"schema":"dangers/trace/v1","kind":"header","label":"golden","seed":7,"recorded":9,"dropped":0}|};
      {|{"kind":"event","t":0.001,"ev":"txn_started","owner":1}|};
      {|{"kind":"event","t":0.002,"ev":"message_sent","src":0,"dst":1}|};
      {|{"kind":"event","t":0.003,"ev":"lock_waited","owner":1,"resource":5}|};
      {|{"kind":"event","t":0.004,"ev":"lock_granted","owner":1,"resource":5}|};
      {|{"kind":"event","t":0.005,"ev":"message_delivered","src":0,"dst":1}|};
      {|{"kind":"event","t":0.006,"ev":"deadlock_victim","owner":1,"cycle":[1,2]}|};
      {|{"kind":"event","t":0.007,"ev":"message_dropped","src":1,"dst":0}|};
      {|{"kind":"event","t":0.008,"ev":"txn_started","owner":2}|};
      {|{"kind":"event","t":0.009,"ev":"note","text":"end of golden"}|};
      "";
    ]

let test_chrome_golden () =
  let sections = Trace_export.of_jsonl golden_input in
  let chrome = Trace_export.to_chrome sections in
  let events =
    Json.list_of (Json.member "traceEvents" chrome)
  in
  let phases =
    List.map (fun e -> Json.string_of (Json.member "ph" e)) events
  in
  let count ph = List.length (List.filter (String.equal ph) phases) in
  checki "two begins (owner 1 and 2)" 2 (count "B");
  checki "two ends (deadlock + truncation)" 2 (count "E");
  checki "one flow start" 1 (count "s");
  checki "one flow finish" 1 (count "f");
  checki "two process-name records" 2 (count "M");
  let rendered = Json.to_string chrome in
  checkb "dangling txn closed as truncated" true
    (contains rendered {|"truncated":true|});
  let ic = open_in_bin "trace_golden_chrome.json" in
  let golden =
    really_input_string ic (in_channel_length ic) |> String.trim
  in
  close_in ic;
  Alcotest.check Alcotest.string "matches committed golden" golden rendered

let suite =
  [
    Alcotest.test_case "ring basics" `Quick test_ring_basics;
    Alcotest.test_case "pp smoke" `Quick test_pp_smoke;
    Alcotest.test_case "executor emits" `Quick test_executor_emits;
    Alcotest.test_case "network emits" `Quick test_network_emits;
    Alcotest.test_case "no tracer no events" `Quick test_no_tracer_no_events;
    Alcotest.test_case "iter and fold after wrap" `Quick test_iter_fold_wrapped;
    Alcotest.test_case "every event pp and json" `Quick
      test_every_event_pp_and_json;
    Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip;
    Alcotest.test_case "chrome golden" `Quick test_chrome_golden;
  ]
