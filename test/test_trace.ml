(* Trace ring buffer and its wiring through the executor and network. *)

module Trace = Dangers_sim.Trace
module Engine = Dangers_sim.Engine
module Executor = Dangers_txn.Executor
module Txn_id = Dangers_txn.Txn_id
module Lock_manager = Dangers_lock.Lock_manager
module Network = Dangers_net.Network
module Delay = Dangers_net.Delay
module Rng = Dangers_util.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let test_ring_basics () =
  let t = Trace.create ~capacity:3 () in
  for i = 1 to 5 do
    Trace.record t ~now:(float_of_int i) (Trace.Note (string_of_int i))
  done;
  checki "recorded all" 5 (Trace.recorded t);
  checki "dropped oldest" 2 (Trace.dropped t);
  (match Trace.entries t with
  | [ a; b; c ] ->
      Alcotest.check (Alcotest.float 1e-9) "oldest retained" 3. a.Trace.at;
      Alcotest.check (Alcotest.float 1e-9) "then" 4. b.Trace.at;
      Alcotest.check (Alcotest.float 1e-9) "newest" 5. c.Trace.at
  | _ -> Alcotest.fail "three entries expected");
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Trace.create: capacity must be positive") (fun () ->
      ignore (Trace.create ~capacity:0 ()))

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

let test_pp_smoke () =
  let t = Trace.create () in
  Trace.record t ~now:0.5 (Trace.Deadlock_victim { owner = 3; cycle = [ 3; 7 ] });
  Trace.record t ~now:0.6 (Trace.Message_sent { src = 0; dst = 1 });
  let rendered = Format.asprintf "%a" Trace.pp t in
  checkb "mentions the victim" true
    (String.length rendered > 0 && contains rendered "t3 killed (cycle 3->7)")

let test_executor_emits () =
  let engine = Engine.create () in
  let tracer = Trace.create () in
  Engine.set_tracer engine (Some tracer);
  let executor =
    Executor.create ~engine ~locks:(Lock_manager.create ()) ~action_time:0.01 ()
  in
  let gen = Txn_id.Gen.create () in
  let submit steps =
    Executor.run executor ~owner:(Txn_id.Gen.next gen)
      ~steps
      ~on_commit:(fun () -> ())
      ~on_deadlock:(fun ~cycle:_ -> ())
  in
  submit [ Executor.update_step ~resource:1 ];
  submit [ Executor.update_step ~resource:1 ];
  Engine.run engine;
  let count predicate = List.length (Trace.matching tracer predicate) in
  checki "two txns started" 2
    (count (function Trace.Txn_started _ -> true | _ -> false));
  checki "two commits" 2
    (count (function Trace.Txn_committed _ -> true | _ -> false));
  checki "one wait" 1
    (count (function Trace.Lock_waited _ -> true | _ -> false));
  checki "one immediate grant" 1
    (count (function Trace.Lock_granted _ -> true | _ -> false))

let test_network_emits () =
  let engine = Engine.create () in
  let tracer = Trace.create () in
  Engine.set_tracer engine (Some tracer);
  let network =
    Network.create ~engine ~rng:(Rng.create ~seed:1) ~delay:Delay.Zero ~nodes:2
      ~deliver:(fun ~src:_ ~dst:_ () -> ()) ()
  in
  Network.set_connected network ~node:1 false;
  Network.send network ~src:0 ~dst:1 ();
  Network.set_connected network ~node:1 true;
  Engine.run engine;
  let kinds =
    List.map
      (fun e ->
        match e.Trace.event with
        | Trace.Node_disconnected _ -> "down"
        | Trace.Message_sent _ -> "sent"
        | Trace.Message_parked _ -> "parked"
        | Trace.Node_connected _ -> "up"
        | Trace.Message_delivered _ -> "delivered"
        | _ -> "other")
      (Trace.entries tracer)
  in
  Alcotest.check (Alcotest.list Alcotest.string) "lifecycle order"
    [ "down"; "sent"; "parked"; "up"; "delivered" ]
    kinds

let test_no_tracer_no_events () =
  let engine = Engine.create () in
  checkb "no tracer attached" true (Engine.tracer engine = None);
  (* Just exercising the no-op path. *)
  Engine.trace engine (Trace.Note "ignored");
  Engine.set_tracer engine (Some (Trace.create ()));
  Engine.trace engine (Trace.Note "kept");
  match Engine.tracer engine with
  | Some t -> checki "one event" 1 (Trace.recorded t)
  | None -> Alcotest.fail "tracer lost"

let suite =
  [
    Alcotest.test_case "ring basics" `Quick test_ring_basics;
    Alcotest.test_case "pp smoke" `Quick test_pp_smoke;
    Alcotest.test_case "executor emits" `Quick test_executor_emits;
    Alcotest.test_case "network emits" `Quick test_network_emits;
    Alcotest.test_case "no tracer no events" `Quick test_no_tracer_no_events;
  ]
