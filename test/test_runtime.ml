(* The runtime abstraction's contract: the live clock in virtual mode is a
   drop-in replacement for the engine (identical event order), wall mode
   really elapses, and the two-tier scheme produces identical outcome
   counts on the sim and live-virtual runtimes — the equivalence the
   whole serve path rests on. *)

module Engine = Dangers_sim.Engine
module Clock = Dangers_runtime.Clock
module Runtime = Dangers_runtime.Runtime
module Live_clock = Dangers_runtime.Live_clock
module Codec = Dangers_runtime.Codec
module Params = Dangers_analytic.Params
module Metrics = Dangers_sim.Metrics
module Two_tier = Dangers_core.Two_tier
module Common = Dangers_replication.Common
module Rng = Dangers_util.Rng
module Op = Dangers_txn.Op
module Oid = Dangers_storage.Oid

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* --- clock equivalence: engine vs live-virtual fire identical orders --- *)

(* A deterministic little scheduling torture: nested schedules, equal
   times, cancellations. Runs against any Clock.t and logs what fired. *)
let torture clock =
  let log = ref [] in
  let fire tag () = log := (tag, Clock.now clock) :: !log in
  ignore (Clock.schedule clock ~delay:2. (fire "a"));
  ignore (Clock.schedule clock ~delay:1. (fire "b"));
  (* equal times fire in schedule order *)
  ignore (Clock.schedule clock ~delay:1. (fire "c"));
  let doomed = Clock.schedule clock ~delay:1.5 (fire "never") in
  Clock.cancel clock doomed;
  ignore
    (Clock.schedule clock ~delay:0.5 (fun () ->
         fire "d" ();
         (* nested: scheduled mid-run, lands between pending events *)
         ignore (Clock.schedule clock ~delay:0.75 (fire "e"));
         Clock.schedule_unit clock ~delay:3. (fire "f")));
  Clock.run clock;
  List.rev !log

let test_virtual_matches_engine () =
  let sim = torture (Clock.of_engine (Engine.create ())) in
  let live = torture (Clock.of_live (Live_clock.create Virtual)) in
  checki "same event count" (List.length sim) (List.length live);
  List.iter2
    (fun (tag_s, t_s) (tag_l, t_l) ->
      Alcotest.check Alcotest.string "same order" tag_s tag_l;
      checkf "same time" t_s t_l)
    sim live;
  checkb "cancelled never fired" true
    (not (List.mem_assoc "never" sim) && not (List.mem_assoc "never" live))

let test_virtual_run_until () =
  let clock = Clock.of_live (Live_clock.create Virtual) in
  let fired = ref 0 in
  ignore (Clock.schedule clock ~delay:1. (fun () -> incr fired));
  ignore (Clock.schedule clock ~delay:10. (fun () -> incr fired));
  Clock.run clock ~until:5.;
  checki "only the due event fired" 1 !fired;
  checkf "clock parked at the deadline" 5. (Clock.now clock);
  Clock.run clock;
  checki "rest fired on resume" 2 !fired

let test_wall_mode_elapses () =
  let live = Live_clock.create Wall in
  let clock = Clock.of_live live in
  let fired_at = ref nan in
  ignore (Clock.schedule clock ~delay:0.02 (fun () -> fired_at := Clock.now clock));
  Clock.run clock;
  checkb "timer waited for real time" true (!fired_at >= 0.02);
  checkb "did not oversleep wildly" true (!fired_at < 1.);
  checkb "clock monotone past the event" true (Clock.now clock >= !fired_at)

let test_wall_stop_is_thread_safe () =
  let live = Live_clock.create Wall in
  (* With an idle waiter and an empty queue, only stop ends the run. *)
  Live_clock.set_idle_waiter live (Some (fun ~timeout:_ -> ()));
  let stopper =
    Domain.spawn (fun () ->
        Unix.sleepf 0.05;
        Live_clock.stop live)
  in
  Live_clock.run live;
  Domain.join stopper;
  checkb "returned after stop" true true

let test_post_crosses_domains () =
  let live = Live_clock.create Wall in
  let hits = Atomic.make 0 in
  Live_clock.set_idle_waiter live (Some (fun ~timeout:_ -> ()));
  let poster =
    Domain.spawn (fun () ->
        for _ = 1 to 100 do
          Live_clock.post live (fun () -> Atomic.incr hits)
        done;
        Unix.sleepf 0.05;
        Live_clock.post live (fun () -> Live_clock.stop live))
  in
  Live_clock.run live;
  Domain.join poster;
  checki "all posted closures ran on the clock domain" 100 (Atomic.get hits)

(* --- codec --- *)

let test_codec_roundtrip () =
  let buf = Buffer.create 64 in
  Codec.put_u8 buf 7;
  Codec.put_u16 buf 65535;
  Codec.put_u32 buf 123_456_789;
  Codec.put_f64 buf (-0.1);
  Codec.put_string buf "hello";
  let frame = Codec.frame buf in
  (* 4-byte length prefix + payload *)
  checki "frame length" (4 + 1 + 2 + 4 + 8 + 2 + 5) (String.length frame);
  let payload = String.sub frame 4 (String.length frame - 4) in
  let r = Codec.reader payload in
  checki "u8" 7 (Codec.get_u8 r);
  checki "u16" 65535 (Codec.get_u16 r);
  checki "u32" 123_456_789 (Codec.get_u32 r);
  checkb "f64 exact" true (Codec.get_f64 r = -0.1);
  Alcotest.check Alcotest.string "string" "hello" (Codec.get_string r);
  Codec.expect_end r;
  Alcotest.check_raises "trailing garbage detected"
    (Codec.Malformed "1 trailing bytes after a complete message")
    (fun () ->
      let r = Codec.reader "\x00\x01" in
      ignore (Codec.get_u8 r);
      Codec.expect_end r)

(* --- the headline equivalence: two-tier on sim vs live-virtual --- *)

type counts = {
  commits : int;
  tentative_commits : int;
  accepted : int;
  rejected : int;
  scope_violations : int;
  syncs : int;
}

(* A fixed-seed churning-mobile workload, driven entirely through the
   Clock interface so the same closure runs on either runtime. *)
let run_two_tier runtime =
  let params =
    {
      Params.default with
      Params.nodes = 6;
      db_size = 40;
      tps = 2.;
      actions = 2;
      action_time = 0.01;
      time_between_disconnects = 20.;
      disconnected_time = 15.;
    }
  in
  let sys = Two_tier.create ~runtime ~base_nodes:3 params ~seed:11 in
  let clock = (Two_tier.base sys).Common.clock in
  let rng = Rng.create ~seed:99 in
  (* Interleave explicit submissions (numbered nodes, mixed ops) with
     generator load from [start]. *)
  Two_tier.start sys;
  for round = 1 to 40 do
    let node = Rng.int rng params.Params.nodes in
    let oid = Oid.of_int (Rng.int rng params.Params.db_size) in
    let delta = float_of_int (1 + Rng.int rng 8) *. 0.5 in
    Two_tier.submit sys ~node [ Op.Increment (oid, delta) ];
    Clock.run clock ~until:(float_of_int round *. 2.)
  done;
  Two_tier.quiesce_and_sync sys;
  let metrics = (Two_tier.base sys).Common.metrics in
  let count name = Metrics.total_count metrics name in
  {
    commits = (Two_tier.summary sys).Dangers_replication.Repl_stats.commits;
    tentative_commits = count "tentative_commits";
    accepted = Two_tier.tentative_accepted sys;
    rejected = Two_tier.tentative_rejected sys;
    scope_violations = count "scope_violations";
    syncs = count "syncs";
  }

let test_two_tier_sim_live_equivalence () =
  let sim = run_two_tier (Runtime.sim ()) in
  let live = run_two_tier (Runtime.live_virtual ()) in
  checkb "workload actually exercised the mobile path" true
    (sim.tentative_commits > 0 && sim.syncs > 0 && sim.commits > 0);
  checki "commits" sim.commits live.commits;
  checki "tentative commits" sim.tentative_commits live.tentative_commits;
  checki "tentative accepted" sim.accepted live.accepted;
  checki "tentative rejected" sim.rejected live.rejected;
  checki "scope violations" sim.scope_violations live.scope_violations;
  checki "syncs" sim.syncs live.syncs

let test_two_tier_sim_determinism () =
  (* The equivalence test is only meaningful if a runtime is internally
     deterministic; pin that down for both. *)
  let a = run_two_tier (Runtime.sim ()) in
  let b = run_two_tier (Runtime.sim ()) in
  let c = run_two_tier (Runtime.live_virtual ()) in
  let d = run_two_tier (Runtime.live_virtual ()) in
  checkb "sim deterministic" true (a = b);
  checkb "live-virtual deterministic" true (c = d)

let test_cross_backend_cancel_rejected () =
  let sim = Clock.of_engine (Engine.create ()) in
  let live = Clock.of_live (Live_clock.create Virtual) in
  let id = Clock.schedule sim ~delay:1. (fun () -> ()) in
  Alcotest.check_raises "backend mismatch detected"
    (Invalid_argument "Clock.cancel: event from a different backend")
    (fun () -> Clock.cancel live id)

let suite =
  [
    Alcotest.test_case "live-virtual matches the engine event-for-event" `Quick
      test_virtual_matches_engine;
    Alcotest.test_case "virtual run ~until parks at the deadline" `Quick
      test_virtual_run_until;
    Alcotest.test_case "wall mode waits for real time" `Quick
      test_wall_mode_elapses;
    Alcotest.test_case "wall stop from another domain" `Quick
      test_wall_stop_is_thread_safe;
    Alcotest.test_case "post crosses domains" `Quick test_post_crosses_domains;
    Alcotest.test_case "codec round-trips and rejects garbage" `Quick
      test_codec_roundtrip;
    Alcotest.test_case "two-tier: sim and live-virtual counts identical"
      `Quick test_two_tier_sim_live_equivalence;
    Alcotest.test_case "two-tier: each runtime is deterministic" `Quick
      test_two_tier_sim_determinism;
    Alcotest.test_case "cross-backend cancel is refused" `Quick
      test_cross_backend_cancel_rejected;
  ]
