(* Heap, Engine, and Metrics tests. *)

module Heap = Dangers_sim.Heap
module Engine = Dangers_sim.Engine
module Metrics = Dangers_sim.Metrics

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* --- Heap --- *)

let test_heap_basic () =
  let h = Heap.create ~cmp:Int.compare () in
  checkb "empty" true (Heap.is_empty h);
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3 ];
  checki "length" 5 (Heap.length h);
  Alcotest.check (Alcotest.option Alcotest.int) "peek" (Some 1) (Heap.peek h);
  checki "pop order" 1 (Heap.pop_exn h);
  checki "pop order" 1 (Heap.pop_exn h);
  checki "pop order" 3 (Heap.pop_exn h);
  checki "pop order" 4 (Heap.pop_exn h);
  checki "pop order" 5 (Heap.pop_exn h);
  checkb "drained" true (Heap.is_empty h)

let test_heap_pop_empty () =
  let h = Heap.create ~cmp:Int.compare () in
  Alcotest.check (Alcotest.option Alcotest.int) "pop empty" None (Heap.pop h);
  Alcotest.check_raises "pop_exn empty" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Heap.pop_exn h))

let test_heap_to_sorted_list_preserves () =
  let h = Heap.create ~cmp:Int.compare () in
  List.iter (Heap.push h) [ 9; 2; 7 ];
  Alcotest.check (Alcotest.list Alcotest.int) "sorted copy" [ 2; 7; 9 ]
    (Heap.to_sorted_list h);
  checki "heap unchanged" 3 (Heap.length h)

let heap_sort_prop =
  QCheck.Test.make ~name:"heap: extraction is sorted" ~count:300
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:Int.compare () in
      List.iter (Heap.push h) xs;
      let rec drain acc = match Heap.pop h with
        | None -> List.rev acc
        | Some x -> drain (x :: acc)
      in
      drain [] = List.sort Int.compare xs)

(* --- Engine --- *)

let test_engine_ordering () =
  let engine = Engine.create () in
  let trace = ref [] in
  let record tag () = trace := tag :: !trace in
  ignore (Engine.schedule engine ~delay:2.0 (record "c"));
  ignore (Engine.schedule engine ~delay:1.0 (record "a"));
  ignore (Engine.schedule engine ~delay:1.0 (record "b"));
  Engine.run engine;
  Alcotest.check (Alcotest.list Alcotest.string) "time then FIFO order"
    [ "a"; "b"; "c" ] (List.rev !trace);
  checkf "clock at last event" 2.0 (Engine.now engine)

let test_engine_cancel () =
  let engine = Engine.create () in
  let fired = ref false in
  let event = Engine.schedule engine ~delay:1.0 (fun () -> fired := true) in
  Engine.cancel engine event;
  checki "pending zero after cancel" 0 (Engine.pending engine);
  Engine.run engine;
  checkb "cancelled never fires" false !fired

let test_engine_until () =
  let engine = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Engine.schedule engine ~delay:(float_of_int i) (fun () -> incr count))
  done;
  Engine.run engine ~until:5.5;
  checki "five fired" 5 !count;
  checkf "clock advanced to deadline" 5.5 (Engine.now engine);
  Engine.run engine;
  checki "rest fired" 10 !count

let test_engine_nested_schedule () =
  let engine = Engine.create () in
  let times = ref [] in
  ignore
    (Engine.schedule engine ~delay:1.0 (fun () ->
         times := Engine.now engine :: !times;
         ignore
           (Engine.schedule engine ~delay:0.5 (fun () ->
                times := Engine.now engine :: !times))));
  Engine.run engine;
  Alcotest.check (Alcotest.list (Alcotest.float 1e-9)) "nested times"
    [ 1.0; 1.5 ] (List.rev !times)

let test_engine_past_rejected () =
  let engine = Engine.create () in
  ignore (Engine.schedule engine ~delay:3.0 (fun () -> ()));
  Engine.run engine;
  Alcotest.check_raises "past time rejected"
    (Invalid_argument "Engine.schedule_at: time in the past") (fun () ->
      ignore (Engine.schedule_at engine ~time:1.0 (fun () -> ())))

let test_engine_zero_delay_cascade () =
  (* Zero-delay events must still run in schedule order without stalling. *)
  let engine = Engine.create () in
  let n = ref 0 in
  let rec chain k = if k > 0 then
    ignore (Engine.schedule engine ~delay:0. (fun () -> incr n; chain (k - 1)))
  in
  chain 100;
  Engine.run engine;
  checki "all fired" 100 !n;
  checkf "clock unmoved" 0. (Engine.now engine)

let test_engine_cancel_stops_runaway_chain () =
  (* A self-rescheduling chain is the canonical Runaway source; cancelling
     its current link must break the loop so the same budget that would
     have tripped the guard now drains cleanly. *)
  let engine = Engine.create () in
  let current = ref None in
  let links = ref 0 in
  let rec loop () =
    incr links;
    current := Some (Engine.schedule engine ~delay:0.01 loop)
  in
  loop ();
  ignore
    (Engine.schedule engine ~delay:1.005 (fun () ->
         Option.iter (Engine.cancel engine) !current));
  (* Without the cancel this loop would fire ~100_000 events and raise. *)
  Engine.run ~max_events:1000 engine;
  checki "chain stopped at the cancel point" 101 !links;
  checki "queue drained" 0 (Engine.pending engine)

let test_engine_cancelled_not_counted () =
  let engine = Engine.create () in
  let e1 = Engine.schedule engine ~delay:1. (fun () -> ()) in
  ignore (Engine.schedule engine ~delay:2. (fun () -> ()));
  ignore (Engine.schedule engine ~delay:6. (fun () -> ()));
  let before = Engine.events_fired engine in
  Engine.cancel engine e1;
  Engine.run engine ~until:3.;
  checki "cancelled event not in events_fired" 1
    (Engine.events_fired engine - before);
  checkf "until still honoured" 3. (Engine.now engine);
  checki "later event still queued" 1 (Engine.pending engine)

let test_engine_cancel_after_fire_noop () =
  let engine = Engine.create () in
  let fired = ref [] in
  let e1 = Engine.schedule engine ~delay:1. (fun () -> fired := 1 :: !fired) in
  ignore (Engine.schedule engine ~delay:2. (fun () -> fired := 2 :: !fired));
  Engine.run engine ~until:1.5;
  (* e1 has fired; cancelling its stale handle must not disturb the queue. *)
  Engine.cancel engine e1;
  Engine.cancel engine e1;
  checki "pending untouched" 1 (Engine.pending engine);
  Engine.run engine;
  Alcotest.check (Alcotest.list Alcotest.int) "second event unaffected"
    [ 1; 2 ] (List.rev !fired)

(* --- Metrics --- *)

let test_engine_runaway_guard () =
  let engine = Engine.create () in
  (* A self-rescheduling zero-delay loop: without the guard this would hang. *)
  let rec loop () = ignore (Engine.schedule engine ~delay:0. loop) in
  loop ();
  (try
     Engine.run ~max_events:1000 engine;
     Alcotest.fail "runaway not detected"
   with Engine.Runaway n -> checki "budget reported" 1000 n);
  (* A bounded workload under the same guard completes fine. *)
  let engine2 = Engine.create () in
  let fired = ref 0 in
  for i = 1 to 50 do
    ignore (Engine.schedule engine2 ~delay:(float_of_int i) (fun () -> incr fired))
  done;
  Engine.run ~max_events:1000 engine2;
  checki "bounded run completes" 50 !fired

let test_metrics_counters_and_window () =
  let engine = Engine.create () in
  let metrics = Metrics.of_engine engine in
  Metrics.incr metrics "x";
  Metrics.incr_by metrics "x" 4;
  checki "window count" 5 (Metrics.count metrics "x");
  ignore (Engine.schedule engine ~delay:10. (fun () -> Metrics.incr metrics "x"));
  Engine.run engine;
  checki "lifetime" 6 (Metrics.total_count metrics "x");
  checkf "rate over 10s window" 0.6 (Metrics.rate metrics "x");
  Metrics.start_window metrics;
  checki "window reset" 0 (Metrics.count metrics "x");
  checki "lifetime preserved" 6 (Metrics.total_count metrics "x")

let test_metrics_samples () =
  let engine = Engine.create () in
  let metrics = Metrics.of_engine engine in
  Metrics.sample metrics "d" 1.0;
  Metrics.sample metrics "d" 3.0;
  checkf "sample mean" 2.0 (Dangers_util.Stats.mean (Metrics.sample_stats metrics "d"));
  checki "unknown counter" 0 (Metrics.count metrics "nope")

let test_heap_clear_keeps_capacity () =
  let h = Heap.create ~cmp:Int.compare () in
  for i = 0 to 99 do
    Heap.push h i
  done;
  let grown = Heap.capacity h in
  checkb "capacity at least 100" true (grown >= 100);
  Heap.clear h;
  checkb "cleared" true (Heap.is_empty h);
  checki "capacity preserved across clear" grown (Heap.capacity h);
  (* refill to the same size: no regrowth from the initial 16 *)
  for i = 0 to 99 do
    Heap.push h (100 - i)
  done;
  checki "no regrowth on refill" grown (Heap.capacity h);
  checki "still a min-heap" 1 (Heap.pop_exn h)

let test_engine_queue_high_water () =
  let e = Engine.create () in
  checki "empty engine high water" 0 (Engine.queue_high_water e);
  let cancelled = Engine.schedule e ~delay:3. (fun () -> ()) in
  for i = 1 to 9 do
    ignore (Engine.schedule e ~delay:(float_of_int i) (fun () -> ()))
  done;
  checki "high water tracks peak depth" 10 (Engine.queue_high_water e);
  (* cancelled events still occupy queue slots until popped *)
  Engine.cancel e cancelled;
  ignore (Engine.schedule e ~delay:10. (fun () -> ()));
  checki "cancel frees no slot" 11 (Engine.queue_high_water e);
  Engine.run e;
  checki "draining does not lower the mark" 11 (Engine.queue_high_water e)

let suite =
  [
    Alcotest.test_case "heap basics" `Quick test_heap_basic;
    Alcotest.test_case "heap clear keeps capacity" `Quick
      test_heap_clear_keeps_capacity;
    Alcotest.test_case "engine queue high water" `Quick
      test_engine_queue_high_water;
    Alcotest.test_case "heap pop empty" `Quick test_heap_pop_empty;
    Alcotest.test_case "heap sorted copy" `Quick test_heap_to_sorted_list_preserves;
    QCheck_alcotest.to_alcotest heap_sort_prop;
    Alcotest.test_case "engine ordering" `Quick test_engine_ordering;
    Alcotest.test_case "engine cancel" `Quick test_engine_cancel;
    Alcotest.test_case "engine until" `Quick test_engine_until;
    Alcotest.test_case "engine nested schedule" `Quick test_engine_nested_schedule;
    Alcotest.test_case "engine rejects past" `Quick test_engine_past_rejected;
    Alcotest.test_case "engine zero-delay cascade" `Quick test_engine_zero_delay_cascade;
    Alcotest.test_case "engine runaway guard" `Quick test_engine_runaway_guard;
    Alcotest.test_case "engine cancel stops runaway chain" `Quick
      test_engine_cancel_stops_runaway_chain;
    Alcotest.test_case "engine cancelled not counted" `Quick
      test_engine_cancelled_not_counted;
    Alcotest.test_case "engine cancel after fire no-op" `Quick
      test_engine_cancel_after_fire_noop;
    Alcotest.test_case "metrics counters and window" `Quick test_metrics_counters_and_window;
    Alcotest.test_case "metrics samples" `Quick test_metrics_samples;
  ]
