(* The multicore sweep runner: task-pool semantics, the determinism
   guarantee the CLI advertises (--jobs N output byte-identical to
   --jobs 1), and the export codecs. *)

module Task_pool = Dangers_runner.Task_pool
module Sweep = Dangers_runner.Sweep
module Export = Dangers_runner.Export
module Registry = Dangers_experiments.Registry
module Scheme = Dangers_experiments.Scheme
module Params = Dangers_analytic.Params
module Repl_stats = Dangers_replication.Repl_stats

let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string
let checki = Alcotest.check Alcotest.int

(* --- Task_pool --- *)

let test_pool_order_preserved () =
  let tasks = Array.init 100 Fun.id in
  let serial = Task_pool.map ~jobs:1 ~f:(fun i -> i * i) tasks in
  let parallel = Task_pool.map ~jobs:4 ~f:(fun i -> i * i) tasks in
  checkb "order preserved" true (serial = parallel);
  checki "last slot" (99 * 99) parallel.(99)

let test_pool_empty_and_singleton () =
  checki "empty" 0 (Array.length (Task_pool.map ~jobs:4 ~f:succ [||]));
  checkb "singleton" true (Task_pool.map ~jobs:4 ~f:succ [| 1 |] = [| 2 |])

let test_pool_propagates_error () =
  let boom i = if i = 3 then failwith "boom" else i in
  Alcotest.check_raises "first failure re-raised" (Failure "boom") (fun () ->
      ignore (Task_pool.map ~jobs:4 ~f:boom (Array.init 8 Fun.id)))

(* --- Determinism: parallel sweep equals serial, byte for byte --- *)

let jsonl_of_items items =
  Export.to_jsonl (List.map Export.record_of_item items)

let test_sweep_experiments_deterministic () =
  let tasks =
    Sweep.experiment_tasks ~quick:true Registry.all ~seeds:[ 42 ]
  in
  let serial = jsonl_of_items (Sweep.run ~jobs:1 tasks) in
  let parallel = jsonl_of_items (Sweep.run ~jobs:4 tasks) in
  checks "jobs=4 byte-identical to jobs=1" serial parallel

let test_sweep_schemes_deterministic () =
  let params =
    { Params.default with db_size = 300; nodes = 3; tps = 4.; actions = 3 }
  in
  let tasks =
    Sweep.scheme_tasks ~warmup:1. ~span:10. ~seeds:[ 7; 108 ]
      ~specs:[ Scheme.spec params ]
      (Scheme.names ())
  in
  let serial = jsonl_of_items (Sweep.run ~jobs:1 tasks) in
  let parallel = jsonl_of_items (Sweep.run ~jobs:4 tasks) in
  checks "scheme grid byte-identical" serial parallel

let test_sweep_unknown_names_rejected () =
  let unknown = Sweep.Experiment_task { id = "EX99"; quick = true; seed = 1 } in
  checkb "unknown experiment raises" true
    (match Sweep.run_task unknown with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Export codecs --- *)

let sample_records () =
  let tasks =
    Sweep.experiment_tasks ~quick:true
      (List.filteri (fun i _ -> i < 2) Registry.all)
      ~seeds:[ 5 ]
    @ Sweep.scheme_tasks ~warmup:1. ~span:5. ~seeds:[ 5 ]
        ~specs:[ Scheme.spec Params.default ]
        [ "lazy-group"; "two-tier" ]
  in
  List.map Export.record_of_item (Sweep.run tasks)

let test_jsonl_round_trip () =
  let jsonl = Export.to_jsonl (sample_records ()) in
  checks "to_jsonl . of_jsonl = id" jsonl (Export.to_jsonl (Export.of_jsonl jsonl))

let test_json_value_round_trip () =
  List.iter
    (fun s ->
      checks "canonical json round-trips" s
        Export.(json_to_string (json_of_string s)))
    [
      {|{"a":[1,2.5,-3e-05],"b":"x\"y\\z","c":[true,false,null],"d":{}}|};
      {|"é\t\n"|};
      "[]";
    ]

let test_float_round_trip () =
  List.iter
    (fun f ->
      let back = Export.(float_of_json (json_of_float f)) in
      checkb (Printf.sprintf "%h survives" f) true
        (Float.equal back f || (Float.is_nan f && Float.is_nan back)))
    [ 0.; -0.; 1.5; 0.1; 1e300; 4e-12; Float.nan; Float.infinity;
      Float.neg_infinity; 0.041666666666666664 ]

let test_csv_shape () =
  let csv = Export.to_csv (sample_records ()) in
  let lines = String.split_on_char '\n' (String.trim csv) in
  let header = List.hd lines in
  checkb "header leads with kind,id,seed" true
    (String.length header > 12 && String.sub header 0 12 = "kind,id,seed");
  let cols = List.length (String.split_on_char ',' header) in
  List.iter
    (fun line ->
      (* Diagnostics cells are k=v;k2=v2 — no commas — so a raw split is a
         faithful column count for the rows we emit. *)
      checki ("columns: " ^ line) cols
        (List.length (String.split_on_char ',' line)))
    lines

let suite =
  [
    Alcotest.test_case "pool preserves order" `Quick test_pool_order_preserved;
    Alcotest.test_case "pool edge sizes" `Quick test_pool_empty_and_singleton;
    Alcotest.test_case "pool propagates error" `Quick test_pool_propagates_error;
    Alcotest.test_case "experiment sweep deterministic across jobs" `Slow
      test_sweep_experiments_deterministic;
    Alcotest.test_case "scheme sweep deterministic across jobs" `Slow
      test_sweep_schemes_deterministic;
    Alcotest.test_case "unknown task names rejected" `Quick
      test_sweep_unknown_names_rejected;
    Alcotest.test_case "jsonl round-trip" `Slow test_jsonl_round_trip;
    Alcotest.test_case "json value round-trip" `Quick test_json_value_round_trip;
    Alcotest.test_case "float round-trip" `Quick test_float_round_trip;
    Alcotest.test_case "csv shape" `Slow test_csv_shape;
  ]
