(* D1 fixtures: each banned-call family appears once, plus one
   suppressed site. Expected: 4 findings, 1 suppression. *)

let seed () = Random.self_init ()
let stamp () = Unix.gettimeofday ()
let cpu () = Sys.time ()
let dispersed x = Hashtbl.hash x
let allowed () = (Random.self_init () [@lint.allow "D1"])
