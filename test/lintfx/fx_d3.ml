(* D3 fixtures: polymorphic comparison instantiated at float (directly
   or through a container) is a finding; integer uses and Float.equal
   are not. Expected: 4 findings, 1 suppression. *)

let eq (a : float) b = a = b
let cmp (a : float) b = compare a b
let bigger (a : float) b = max a b
let deep (a : float list) b = a = b
let fine (a : float) b = Float.equal a b
let ints (a : int) b = a = b
let allowed (a : float) b = (a = b [@lint.allow "D3"])
