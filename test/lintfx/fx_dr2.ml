(* Seeded DR2 violations: read-modify-write windows on atomics. *)

let hits = Atomic.make 0

(* the canonical lost update *)
let lost_update () = Atomic.set hits (Atomic.get hits + 1)

(* same pattern on a parameter *)
let lost_update_param (gauge : float Atomic.t) =
  Atomic.set gauge (Atomic.get gauge *. 0.5)

(* exchange built from get has the same window *)
let lost_exchange () = Atomic.exchange hits (Atomic.get hits + 1) |> ignore

(* clean: single atomic operations, or get/set on distinct atomics *)
let fine_fetch () = Atomic.fetch_and_add hits 1 |> ignore
let fine_reset () = Atomic.set hits 0
let fine_copy (a : int Atomic.t) (b : int Atomic.t) = Atomic.set a (Atomic.get b)
