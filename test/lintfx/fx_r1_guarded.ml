(* R1 fixture: a structure that binds its own Mutex.t counts as guarded
   (the Warnings pattern) — no findings expected. *)

let lock = Mutex.create ()
let per_key : (string, int) Hashtbl.t = Hashtbl.create 8

let bump key =
  Mutex.lock lock;
  let n = try Hashtbl.find per_key key with Not_found -> 0 in
  Hashtbl.replace per_key key (n + 1);
  Mutex.unlock lock
