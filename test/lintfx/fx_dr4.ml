(* Seeded DR4: module-level mutable state reached both from a
   domain-crossing closure and from ordinary top-level code — plus the
   DR1 findings for the crossing side itself. *)

let stats : (string, int) Hashtbl.t = Hashtbl.create 8

(* plain side: ordinary callers touch the table *)
let record key = Hashtbl.replace stats key 1

(* crossing side, directly in the closure *)
let start_direct () = Domain.spawn (fun () -> Hashtbl.replace stats "bg" 2)

let tick () = Hashtbl.replace stats "tick" 0

(* crossing side, one call away *)
let start_via_call () = Domain.spawn (fun () -> tick ())
