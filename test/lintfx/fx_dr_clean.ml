(* True negatives for DR1–DR4: every sharing pattern here is
   synchronized (Atomic, module mutex, DLS) or immutable, so the DR
   rules must stay silent on this file. *)

let total = Atomic.make 0
let m = Mutex.create ()
let guarded = ref 0

let bump_total () = Atomic.incr total

let locked_incr () =
  Mutex.lock m;
  incr guarded;
  Mutex.unlock m

(* atomics crossing a domain are fine *)
let spawn_atomic () =
  let d = Domain.spawn (fun () -> Atomic.fetch_and_add total 1) in
  Domain.join d

(* mutex-guarded module state crossing a domain is fine *)
let spawn_locked () =
  let d = Domain.spawn (fun () -> locked_incr ()) in
  Domain.join d

(* raising inside Fun.protect with the lock held is fine *)
let protected () =
  Mutex.lock m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock m)
    (fun () -> if !guarded < 0 then failwith "negative" else !guarded)

(* domain-local storage is confined by construction *)
let scratch = Domain.DLS.new_key (fun () -> Buffer.create 64)
let local_len () = Buffer.length (Domain.DLS.get scratch)

(* capturing immutable data is fine *)
let spawn_immutable () =
  let xs = [ 1; 2; 3 ] in
  let d = Domain.spawn (fun () -> List.length xs) in
  Domain.join d

(* a locally-allocated, locally-guarded record is fine *)
type cell = { lock : Mutex.t; mutable value : int }

let self_guarded () =
  let c = { lock = Mutex.create (); value = 0 } in
  let d =
    Domain.spawn (fun () ->
        Mutex.lock c.lock;
        c.value <- c.value + 1;
        Mutex.unlock c.lock)
  in
  Domain.join d;
  c.value
