(* D2 fixtures: a bare iter, an unsorted fold, and a series-export-shaped
   streaming iter are findings; a fold feeding a sort in the same
   expression (either nesting direction) is not.
   Expected: 3 findings, 1 suppression. *)

let make () : (string, int) Hashtbl.t = Hashtbl.create 4
let export tbl = Hashtbl.iter (fun k v -> Printf.printf "%s=%d\n" k v) tbl
let unsorted tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []

let sorted_direct tbl =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])

let sorted_pipe tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort String.compare

let allowed tbl = (Hashtbl.iter (fun _ _ -> ()) tbl [@lint.allow "D2"])

(* The series-export shape: streaming windows straight out of a table
   writes JSONL lines in bucket order, so a fixed-seed run's series file
   is not byte-stable. *)
let stream_windows oc tbl =
  Hashtbl.iter (fun i v -> Printf.fprintf oc "{\"i\":%d,\"v\":%f}\n" i v) tbl
