(* File-wide suppression fixture: the floating attribute silences both
   rules everywhere in the unit (and exercises the comma-separated
   payload). Expected: 0 findings, 2 suppressions. *)

[@@@lint.allow "D1, P1"]

let a () = Random.self_init ()
let b xs = List.hd xs
