(* P1 fixtures: each partial function appears once, plus one suppressed
   site and one total alternative. Expected: 4 findings, 1 suppression. *)

let first xs = List.hd xs
let rest xs = List.tl xs
let third xs = List.nth xs 2
let force o = Option.get o
let allowed xs = (List.hd xs [@lint.allow "P1"])
let safe = function [] -> None | x :: _ -> Some x
