(* Seeded DR1 violations: unsynchronized mutable state crossing a domain
   boundary. test_lint pins each marked line, so keep the layout. The
   Domain_pool stand-in exercises name-based crossing-target matching
   without depending on the real library. *)

module Domain_pool = struct
  let parallel_for _pool ~n ~f =
    for i = 0 to n - 1 do
      f i
    done
end

(* a let-bound ref written on the spawned domain *)
let spawn_writes_local () =
  let counter = ref 0 in
  let d = Domain.spawn (fun () -> counter := 1) in
  Domain.join d;
  !counter

(* a caller-owned array read on the spawned domain *)
let spawn_reads_param (tasks : int array) =
  let d = Domain.spawn (fun () -> tasks.(0)) in
  Domain.join d

(* a caller-owned array written inside a pool worker *)
let pool_writes_param pool (results : int option array) =
  Domain_pool.parallel_for pool ~n:2 ~f:(fun i -> results.(i) <- Some i)

(* a module-level buffer touched directly inside the closure *)
let journal = Buffer.create 128

let spawn_touches_global () =
  let d = Domain.spawn (fun () -> Buffer.add_string journal "x") in
  Domain.join d

let append line = Buffer.add_string journal line

(* the same buffer reached through a call, one hop away *)
let spawn_reaches_global_via_call () =
  let d = Domain.spawn (fun () -> append "y") in
  Domain.join d

(* acknowledged capture: the suppression must silence it *)
let deliberate () =
  let scratch = ref 0 in
  let d = (Domain.spawn (fun () -> scratch := 1) [@lint.allow "dr1"]) in
  Domain.join d;
  !scratch
