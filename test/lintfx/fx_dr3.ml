(* Seeded DR3 violations: mutex discipline. The module-level mutex also
   marks the structure as guarded, so the refs below stay out of R1/DR1
   and the findings here are DR3 alone. *)

let m = Mutex.create ()
let counter = ref 0

(* unlock only on the then-branch: unbalanced across paths *)
let leak_on_branch flag =
  Mutex.lock m;
  if flag then begin
    incr counter;
    Mutex.unlock m
  end

(* failwith with the lock held, no Fun.protect *)
let raise_while_holding () =
  Mutex.lock m;
  if !counter > 0 then failwith "boom";
  Mutex.unlock m

(* parking every waiter behind the lock *)
let sleep_while_holding () =
  Mutex.lock m;
  Unix.sleepf 0.01;
  Mutex.unlock m

(* net +1 per iteration: double-locks on the second pass *)
let loop_imbalance () =
  let i = ref 0 in
  while !i < 3 do
    Mutex.lock m;
    incr i
  done

(* returns holding the lock *)
let forgot_unlock () =
  Mutex.lock m;
  incr counter

(* clean: protect pairs the unlock with any exit, raise included *)
let guarded_ok () =
  Mutex.lock m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock m)
    (fun () -> if !counter > 1_000 then failwith "overflow" else !counter)
