(* RT1 fixtures: direct engine calls (through the conventional alias) and
   a wall-clock read, plus one suppressed site. Expected: 3 findings,
   1 suppression. The [Unix.gettimeofday] is also a D1 finding — the two
   rules overlap on wall clocks by design (different scopes in-tree). *)

module Engine = struct
  let now () = 0.
  let schedule ~delay f = ignore delay; f ()
end

let peek () = Engine.now ()
let fire f = Engine.schedule ~delay:1.0 f
let stamp () = Unix.gettimeofday ()
let allowed () = (Engine.now () [@lint.allow "RT1"])
