(* R1 fixtures: unguarded module-level mutable state, including inside
   a nested module; Atomic and a binding-level allow are exempt.
   Expected: 4 findings, 1 suppression. *)

let cache : (string, int) Hashtbl.t = Hashtbl.create 16
let counter = ref 0
let lazy_state = lazy (Array.make 4 0)
let safe = Atomic.make 0
let[@lint.allow "R1"] allowed = ref 0

module Inner = struct
  let buf = Buffer.create 16
end
