let () =
  Alcotest.run "dangers"
    [
      ("rng", Test_rng.suite);
      ("stats", Test_stats.suite);
      ("sim", Test_sim.suite);
      ("trace", Test_trace.suite);
      ("storage", Test_storage.suite);
      ("lock", Test_lock.suite);
      ("txn", Test_txn.suite);
      ("net", Test_net.suite);
      ("workload", Test_workload.suite);
      ("replication", Test_replication.suite);
      ("core", Test_core.suite);
      ("analytic", Test_analytic.suite);
      ("table", Test_table.suite);
      ("extensions", Test_extensions.suite);
      ("quorum_sim", Test_quorum_sim.suite);
      ("undo", Test_undo.suite);
      ("experiments", Test_experiments.suite);
      ("properties", Test_properties.suite);
      ("scenarios-e2e", Test_scenarios_run.suite);
      ("coverage", Test_coverage_gaps.suite);
      ("rules-e2e", Test_rules_e2e.suite);
      ("fault", Test_fault.suite);
      ("runner", Test_runner.suite);
      ("parallel-sim", Test_parallel_sim.suite);
      ("microbench", Test_microbench.suite);
      ("obs", Test_obs.suite);
      ("runtime", Test_runtime.suite);
      ("telemetry", Test_telemetry.suite);
      ("lint", Test_lint.suite);
    ]
