(* The @fuzz entry point: random workloads x fault plans per scheme, then
   the sabotage self-checks proving the invariant checker has teeth.
   FUZZ_COUNT tunes cases per scheme (default 200, ~30s total). Failing
   cases shrink and print a `dangers fuzz --replay ...` command line. *)

module Fuzz = Dangers_fault.Fuzz

let () =
  let count =
    match Sys.getenv_opt "FUZZ_COUNT" with
    | Some s -> (try int_of_string s with _ -> 200)
    | None -> 200
  in
  let tests = Fuzz.tests ~count () @ Fuzz.sabotage_tests () in
  exit (QCheck_base_runner.run_tests ~colors:false ~verbose:true tests)
