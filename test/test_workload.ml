(* Profile, Generator, Scenario tests. *)

module Profile = Dangers_workload.Profile
module Generator = Dangers_workload.Generator
module Scenario = Dangers_workload.Scenario
module Op = Dangers_txn.Op
module Oid = Dangers_storage.Oid
module Engine = Dangers_sim.Engine
module Clock = Dangers_runtime.Clock
module Rng = Dangers_util.Rng
module Params = Dangers_analytic.Params

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let test_profile_generates_distinct () =
  let profile = Profile.create ~actions:5 () in
  let rng = Rng.create ~seed:1 in
  for _ = 1 to 100 do
    let ops = Profile.generate profile rng ~db_size:20 in
    checki "five ops" 5 (List.length ops);
    let oids = List.map (fun op -> Oid.to_int (Op.oid op)) ops in
    checki "distinct objects" 5 (List.length (List.sort_uniq Int.compare oids))
  done

let test_profile_kinds () =
  let rng = Rng.create ~seed:2 in
  let all_assigns =
    Profile.generate (Profile.create ~update_kind:Profile.Assigns ~actions:4 ()) rng
      ~db_size:100
  in
  checkb "assigns only" true
    (List.for_all (function Op.Assign _ -> true | Op.Increment _ | Op.Read _ | Op.Assign_from _ -> false) all_assigns);
  let all_incs =
    Profile.generate
      (Profile.create ~update_kind:Profile.Increments ~actions:4 ())
      rng ~db_size:100
  in
  checkb "increments only" true
    (List.for_all (function Op.Increment _ -> true | Op.Assign _ | Op.Read _ | Op.Assign_from _ -> false) all_incs);
  checkb "increment profile commutative" true
    (Profile.commutative (Profile.create ~update_kind:Profile.Increments ~actions:2 ()));
  checkb "assign profile not commutative" false
    (Profile.commutative (Profile.create ~actions:2 ()))

let test_profile_mixed_fraction () =
  let rng = Rng.create ~seed:3 in
  let profile = Profile.create ~update_kind:(Profile.Mixed 0.5) ~actions:1 () in
  let incs = ref 0 and total = 2000 in
  for _ = 1 to total do
    match Profile.generate profile rng ~db_size:50 with
    | [ Op.Increment _ ] -> incr incs
    | [ Op.Assign _ ] -> ()
    | _ -> Alcotest.fail "one op expected"
  done;
  let fraction = float_of_int !incs /. float_of_int total in
  checkb "mixed fraction near 0.5" true (Float.abs (fraction -. 0.5) < 0.05)

let test_profile_zipf_skews () =
  let rng = Rng.create ~seed:4 in
  let profile = Profile.create ~access:(Profile.Zipf 0.9) ~actions:1 () in
  let counts = Array.make 100 0 in
  for _ = 1 to 3000 do
    match Profile.generate profile rng ~db_size:100 with
    | [ op ] ->
        let i = Oid.to_int (Op.oid op) in
        counts.(i) <- counts.(i) + 1
    | _ -> Alcotest.fail "one op expected"
  done;
  checkb "hot head" true (counts.(0) > counts.(70))

let test_profile_validation () =
  Alcotest.check_raises "actions > db_size"
    (Invalid_argument "Profile.generate: actions exceed db_size") (fun () ->
      ignore
        (Profile.generate (Profile.create ~actions:10 ()) (Rng.create ~seed:0)
           ~db_size:5));
  Alcotest.check_raises "bad mixed fraction"
    (Invalid_argument "Profile.create: Mixed fraction outside [0,1]") (fun () ->
      ignore (Profile.create ~update_kind:(Profile.Mixed 1.5) ~actions:1 ()))

let test_generator_rate () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:5 in
  let submitted = ref 0 in
  let generator =
    Generator.start ~clock:(Clock.of_engine engine) ~rng ~tps:10. ~profile:(Profile.create ~actions:2 ())
      ~db_size:100
      ~submit:(fun ops ->
        checki "ops per txn" 2 (List.length ops);
        incr submitted)
  in
  Engine.run engine ~until:200.;
  Generator.stop generator;
  (* 10 TPS x 200 s = 2000 expected; Poisson sd ~ 45. *)
  checkb "rate near 2000" true (abs (!submitted - 2000) < 200);
  checki "generated counter" !submitted (Generator.generated generator);
  let before = !submitted in
  Engine.run engine;
  checki "stop is effective" before !submitted

let test_scenarios () =
  checki "four scenarios" 4 (List.length Scenario.all);
  (match Scenario.find "checkbook" with
  | Some s ->
      Params.validate s.Scenario.params;
      checkb "replicated at three places" true (s.Scenario.params.Params.nodes = 3)
  | None -> Alcotest.fail "checkbook scenario missing");
  checkb "unknown scenario" true (Scenario.find "nope" = None);
  List.iter (fun s -> Params.validate s.Scenario.params) Scenario.all

let test_tpcb_profile () =
  let profile =
    Profile.create ~update_kind:Profile.Increments
      ~access:(Profile.Tpcb { branches = 5; tellers_per_branch = 4 })
      ~actions:3 ()
  in
  let rng = Rng.create ~seed:9 in
  let db_size = 5 + 20 + 100 in
  for _ = 1 to 200 do
    match Profile.generate profile rng ~db_size with
    | [ account; teller; branch ] ->
        let region op lo hi =
          let i = Oid.to_int (Op.oid op) in
          checkb "region" true (i >= lo && i < hi)
        in
        region branch 0 5;
        region teller 5 25;
        region account 25 125;
        (* teller belongs to the branch *)
        let b = Oid.to_int (Op.oid branch) in
        let t = Oid.to_int (Op.oid teller) - 5 in
        checki "teller in branch" b (t / 4);
        checkb "all increments" true
          (List.for_all
             (function Op.Increment _ -> true | _ -> false)
             [ account; teller; branch ])
    | _ -> Alcotest.fail "three ops expected"
  done;
  Alcotest.check_raises "tpcb needs 3 actions"
    (Invalid_argument "Profile.create: Tpcb requires exactly 3 actions")
    (fun () ->
      ignore
        (Profile.create
           ~access:(Profile.Tpcb { branches = 2; tellers_per_branch = 2 })
           ~actions:2 ()))

let test_tpcb_regions () =
  let layout = Profile.tpcb_regions ~branches:3 ~tellers_per_branch:2 ~db_size:20 in
  checki "branch 0" 0 (Oid.to_int (layout (`Branch 0)));
  checki "teller 0" 3 (Oid.to_int (layout (`Teller 0)));
  checki "account 0" 9 (Oid.to_int (layout (`Account 0)));
  Alcotest.check_raises "branch out of range"
    (Invalid_argument "Profile.tpcb_regions: branch") (fun () ->
      ignore (layout (`Branch 3)))

let suite =
  [
    Alcotest.test_case "tpcb profile" `Quick test_tpcb_profile;
    Alcotest.test_case "tpcb regions" `Quick test_tpcb_regions;
    Alcotest.test_case "profile distinct objects" `Quick test_profile_generates_distinct;
    Alcotest.test_case "profile update kinds" `Quick test_profile_kinds;
    Alcotest.test_case "profile mixed fraction" `Quick test_profile_mixed_fraction;
    Alcotest.test_case "profile zipf skew" `Quick test_profile_zipf_skews;
    Alcotest.test_case "profile validation" `Quick test_profile_validation;
    Alcotest.test_case "generator poisson rate" `Quick test_generator_rate;
    Alcotest.test_case "scenarios" `Quick test_scenarios;
  ]
