(* Undo-oriented lazy-group tests, and the two-tier base-history
   serializability checker. *)

module Params = Dangers_analytic.Params
module Op = Dangers_txn.Op
module Oid = Dangers_storage.Oid
module Fstore = Dangers_storage.Store.Fstore
module Engine = Dangers_sim.Engine
module Clock = Dangers_runtime.Clock
module Connectivity = Dangers_net.Connectivity
module Common = Dangers_replication.Common
module Undo = Dangers_replication.Lazy_group_undo
module Stats = Dangers_util.Stats
module Two_tier = Dangers_core.Two_tier
module Profile = Dangers_workload.Profile

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

let o n = Oid.of_int n

let params = { Params.default with nodes = 3; db_size = 50; tps = 1.; actions = 2 }

let test_clean_txn_becomes_durable () =
  let sys = Undo.create params ~seed:1 in
  Undo.submit sys ~node:0 [ Op.Assign (o 3, 7.) ];
  Common.drain (Undo.base sys);
  checki "durable" 1 (Undo.durable sys);
  checki "nothing outstanding" 0 (Undo.tentative_outstanding sys);
  checki "nothing undone" 0 (Undo.undone sys);
  Array.iter
    (fun store -> checkf "replicated" 7. (Fstore.read store (o 3)))
    (Undo.base sys).Common.stores;
  (* Zero network delay: durability is immediate in sim time. *)
  checkf "no lag when connected" 0. (Stats.mean (Undo.durability_lag sys))

let test_conflict_is_undone_everywhere () =
  let sys = Undo.create ~initial_value:100. params ~seed:2 in
  (* Two nodes assign the same object concurrently: each NACKs the other,
     both transactions are backed out, every replica returns to 100. *)
  Undo.submit sys ~node:0 [ Op.Assign (o 5, 111.) ];
  Undo.submit sys ~node:1 [ Op.Assign (o 5, 222.) ];
  Common.drain (Undo.base sys);
  checki "both undone" 2 (Undo.undone sys);
  checki "none durable" 0 (Undo.durable sys);
  Array.iter
    (fun store -> checkf "atomically backed out" 100. (Fstore.read store (o 5)))
    (Undo.base sys).Common.stores

let test_disconnected_node_blocks_durability () =
  let sys =
    Undo.create
      ~mobility:(Connectivity.day_cycle ~connected:5. ~disconnected:1000.)
      ~mobile_nodes:[ 2 ] params ~seed:3
  in
  let clock = (Undo.base sys).Common.clock in
  (* Let node 2 go down (stagger < one cycle), then commit at node 0. *)
  Clock.run clock ~until:1010.;
  Undo.submit sys ~node:0 [ Op.Assign (o 9, 1.) ];
  Clock.run clock ~until:1011.;
  checki "tentative while node 2 is away" 1 (Undo.tentative_outstanding sys);
  checki "not durable yet" 0 (Undo.durable sys);
  (* Let the natural reconnect happen (at most one full cycle away). *)
  Clock.run clock ~until:2100.;
  checki "durable after the reconnect" 1 (Undo.durable sys);
  let lag = Stats.max (Undo.durability_lag sys) in
  checkb "lag lasted until the reconnect (seconds, not instants)" true (lag > 1.);
  Undo.force_sync sys

let test_two_tier_base_history_serializable () =
  let profile = Profile.create ~update_kind:(Profile.Mixed 0.5) ~actions:2 () in
  let tt_params =
    { Params.default with nodes = 4; db_size = 60; tps = 5.;
      time_between_disconnects = 15.; disconnected_time = 30. }
  in
  let sys = Two_tier.create ~profile ~initial_value:50. ~base_nodes:2 tt_params ~seed:4 in
  Two_tier.start sys;
  Clock.run_for (Two_tier.base sys).Common.clock 90.;
  Two_tier.quiesce_and_sync sys;
  checkb "worked" true ((Two_tier.summary sys).Dangers_replication.Repl_stats.commits > 0);
  checkb "base history is single-copy serializable" true
    (Two_tier.base_history_serializable sys);
  checkb "converged" true (Two_tier.converged sys)

let suite =
  [
    Alcotest.test_case "clean txn becomes durable" `Quick test_clean_txn_becomes_durable;
    Alcotest.test_case "conflict undone everywhere" `Quick test_conflict_is_undone_everywhere;
    Alcotest.test_case "disconnected node blocks durability" `Quick
      test_disconnected_node_blocks_durability;
    Alcotest.test_case "two-tier base history serializable" `Quick
      test_two_tier_base_history_serializable;
  ]
