module Stats = Dangers_util.Stats

let checkf = Alcotest.check (Alcotest.float 1e-9)
let checkb = Alcotest.check Alcotest.bool

let test_empty () =
  let s = Stats.create () in
  Alcotest.check Alcotest.int "count" 0 (Stats.count s);
  checkf "mean" 0. (Stats.mean s);
  checkf "variance" 0. (Stats.variance s);
  checkf "total" 0. (Stats.total s)

let test_moments () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.check Alcotest.int "count" 8 (Stats.count s);
  checkf "mean" 5.0 (Stats.mean s);
  (* Sample variance of this classic set: 32/7. *)
  checkf "variance" (32. /. 7.) (Stats.variance s);
  checkf "min" 2. (Stats.min s);
  checkf "max" 9. (Stats.max s);
  checkf "total" 40. (Stats.total s)

let test_confidence_shrinks () =
  let wide = Stats.create () and narrow = Stats.create () in
  for i = 1 to 10 do
    Stats.add wide (float_of_int (i mod 3))
  done;
  for i = 1 to 1000 do
    Stats.add narrow (float_of_int (i mod 3))
  done;
  checkb "more samples, tighter CI" true
    (Stats.confidence95 narrow < Stats.confidence95 wide)

let test_percentile () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  checkf "median" 3. (Stats.percentile xs ~p:0.5);
  checkf "min" 1. (Stats.percentile xs ~p:0.);
  checkf "max" 5. (Stats.percentile xs ~p:1.);
  checkf "interpolated p25" 2. (Stats.percentile xs ~p:0.25);
  Alcotest.check_raises "empty rejected"
    (Invalid_argument "Stats.percentile: empty array") (fun () ->
      ignore (Stats.percentile [||] ~p:0.5))

let test_percentile_nan_and_duplicates () =
  (* Float.compare is total: NaN sorts below every number, so a
     NaN-polluted sample gives a pinned answer instead of a sort-order
     lottery (polymorphic compare happens to agree today, but this test
     keeps the behavior nailed down). *)
  let xs = [| 2.; Float.nan; 1. |] in
  checkb "p0 is the NaN" true (Float.is_nan (Stats.percentile xs ~p:0.));
  checkf "p1 unaffected by the NaN's position" 2. (Stats.percentile xs ~p:1.);
  let dup = [| 5.; 1.; 5.; 1. |] in
  checkf "median of duplicate pairs interpolates" 3.
    (Stats.percentile dup ~p:0.5);
  checkf "p0 with duplicates" 1. (Stats.percentile dup ~p:0.);
  checkf "p1 with duplicates" 5. (Stats.percentile dup ~p:1.)

let test_loglog_slope_exact () =
  (* y = 3 x^2 has slope exactly 2 in log-log space. *)
  let points = List.map (fun x -> (x, 3. *. (x ** 2.))) [ 1.; 2.; 4.; 8.; 16. ] in
  checkf "slope 2" 2. (Stats.loglog_slope points)

let test_loglog_slope_cubic () =
  let points = List.map (fun x -> (x, 0.5 *. (x ** 3.))) [ 1.; 3.; 9.; 27. ] in
  checkf "slope 3" 3. (Stats.loglog_slope points)

let test_loglog_rejects () =
  Alcotest.check_raises "non-positive rejected"
    (Invalid_argument "Stats.loglog_slope: coordinates must be positive")
    (fun () -> ignore (Stats.loglog_slope [ (1., 0.); (2., 1.) ]))

let test_geometric_mean () =
  checkf "gm of 2,8" 4. (Stats.geometric_mean [| 2.; 8. |]);
  checkf "gm of equal" 5. (Stats.geometric_mean [| 5.; 5.; 5. |])

let test_histogram () =
  let h = Stats.Histogram.create ~min:0. ~max:10. ~buckets:5 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.; 3.; 5.; 9.9; -1.; 42. ];
  Alcotest.check Alcotest.int "count" 7 (Stats.Histogram.count h);
  let counts = Stats.Histogram.bucket_counts h in
  Alcotest.check (Alcotest.array Alcotest.int) "buckets"
    [| 3; 1; 1; 0; 2 |] counts;
  let bounds = Stats.Histogram.bucket_bounds h in
  checkf "first lower bound" 0. (fst bounds.(0));
  checkf "last upper bound" 10. (snd bounds.(4))

let qcheck_props =
  let open QCheck in
  [
    Test.make ~name:"stats: welford mean equals arithmetic mean" ~count:300
      (list_of_size (Gen.int_range 1 100) (float_range (-1000.) 1000.))
      (fun xs ->
        let s = Stats.create () in
        List.iter (Stats.add s) xs;
        let expected = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs) in
        Float.abs (Stats.mean s -. expected) < 1e-6 *. (1. +. Float.abs expected));
    Test.make ~name:"stats: variance non-negative" ~count:300
      (list_of_size (Gen.int_range 2 100) (float_range (-100.) 100.))
      (fun xs ->
        let s = Stats.create () in
        List.iter (Stats.add s) xs;
        Stats.variance s >= 0.);
    Test.make ~name:"stats: percentile monotone in p" ~count:200
      (pair
         (array_of_size (Gen.int_range 1 50) (float_range (-50.) 50.))
         (pair (float_range 0. 1.) (float_range 0. 1.)))
      (fun (xs, (p1, p2)) ->
        let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
        Stats.percentile xs ~p:lo <= Stats.percentile xs ~p:hi +. 1e-9);
    Test.make ~name:"stats: percentile of a single point is that point"
      ~count:300
      (pair (float_range (-1e6) 1e6) (float_range 0. 1.))
      (fun (x, p) -> Stats.percentile [| x |] ~p = x);
    Test.make ~name:"stats: percentile hits min at p=0 and max at p=1"
      ~count:300
      (array_of_size (Gen.int_range 1 60) (float_range (-1e3) 1e3))
      (fun xs ->
        let sorted = Array.copy xs in
        Array.sort compare sorted;
        Stats.percentile xs ~p:0. = sorted.(0)
        && Stats.percentile xs ~p:1. = sorted.(Array.length xs - 1));
    Test.make ~name:"stats: loglog_slope rejects duplicate x" ~count:200
      (pair (float_range 0.1 100.)
         (list_of_size (Gen.int_range 2 10) (float_range 0.1 100.)))
      (fun (x, ys) ->
        (* Shrinking may drop below the generator's minimum length. *)
        QCheck.assume (List.length ys >= 2);
        (* Every point shares one x: the fit is a vertical line. *)
        try
          ignore (Stats.loglog_slope (List.map (fun y -> (x, y)) ys));
          false
        with Invalid_argument m -> m = "Stats.loglog_slope: degenerate x values");
    Test.make ~name:"stats: loglog_slope unchanged by doubling the sample"
      ~count:200
      (list_of_size (Gen.int_range 2 20)
         (pair (float_range 0.1 100.) (float_range 0.1 100.)))
      (fun points ->
        let xs = List.map fst points in
        QCheck.assume (List.exists (fun x -> x <> List.hd xs) (List.tl xs));
        let s1 = Stats.loglog_slope points in
        let s2 = Stats.loglog_slope (points @ points) in
        Float.abs (s1 -. s2) <= 1e-6 *. (1. +. Float.abs s1));
    Test.make ~name:"stats: histogram saturates out-of-range into end buckets"
      ~count:300
      (list_of_size (Gen.int_range 0 100) (float_range (-2.) 3.))
      (fun xs ->
        let h = Stats.Histogram.create ~min:0. ~max:1. ~buckets:4 in
        List.iter (Stats.Histogram.add h) xs;
        let counts = Stats.Histogram.bucket_counts h in
        let below = List.length (List.filter (fun x -> x < 0.) xs) in
        let above = List.length (List.filter (fun x -> x >= 1.) xs) in
        Array.fold_left ( + ) 0 counts = List.length xs
        && counts.(0) >= below
        && counts.(Array.length counts - 1) >= above);
  ]

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "moments" `Quick test_moments;
    Alcotest.test_case "confidence shrinks" `Quick test_confidence_shrinks;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "percentile nan and duplicates" `Quick
      test_percentile_nan_and_duplicates;
    Alcotest.test_case "loglog slope quadratic" `Quick test_loglog_slope_exact;
    Alcotest.test_case "loglog slope cubic" `Quick test_loglog_slope_cubic;
    Alcotest.test_case "loglog rejects non-positive" `Quick test_loglog_rejects;
    Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
    Alcotest.test_case "histogram" `Quick test_histogram;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_props
