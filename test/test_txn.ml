(* Op, Txn_id, and Executor tests. *)

module Op = Dangers_txn.Op
module Oid = Dangers_storage.Oid
module Txn_id = Dangers_txn.Txn_id
module Executor = Dangers_txn.Executor
module Engine = Dangers_sim.Engine
module Clock = Dangers_runtime.Clock
module Lock_manager = Dangers_lock.Lock_manager

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

let o n = Oid.of_int n

(* --- Op --- *)

let test_op_apply () =
  checkf "assign" 7. (Op.apply ~current:3. (Op.Assign (o 0, 7.)));
  checkf "increment" 5. (Op.apply ~current:3. (Op.Increment (o 0, 2.)));
  checkf "read" 3. (Op.apply ~current:3. (Op.Read (o 0)))

let test_op_commutes () =
  checkb "distinct oids commute" true
    (Op.commutes (Op.Assign (o 0, 1.)) (Op.Assign (o 1, 2.)));
  checkb "increments commute" true
    (Op.commutes (Op.Increment (o 0, 1.)) (Op.Increment (o 0, 2.)));
  checkb "assigns do not commute" false
    (Op.commutes (Op.Assign (o 0, 1.)) (Op.Assign (o 0, 2.)));
  checkb "assign/increment do not commute" false
    (Op.commutes (Op.Assign (o 0, 1.)) (Op.Increment (o 0, 2.)));
  checkb "reads commute with anything" true
    (Op.commutes (Op.Read (o 0)) (Op.Assign (o 0, 2.)))

let test_all_commute () =
  let incs = [ Op.Increment (o 0, 1.); Op.Increment (o 1, 2.) ] in
  checkb "increment lists commute" true (Op.all_commute incs incs);
  checkb "assign breaks it" false
    (Op.all_commute incs [ Op.Assign (o 0, 5.) ])

(* Increments on one object produce the same value in any order. *)
let increments_commute_prop =
  QCheck.Test.make ~name:"op: increment application order-independent" ~count:300
    QCheck.(pair (list (float_range (-100.) 100.)) (float_range (-100.) 100.))
    (fun (deltas, start) ->
      let ops = List.map (fun d -> Op.Increment (o 0, d)) deltas in
      let apply order =
        List.fold_left (fun value op -> Op.apply ~current:value op) start order
      in
      Float.abs (apply ops -. apply (List.rev ops)) < 1e-6)

(* --- Txn_id --- *)

let test_txn_id_gen () =
  let gen = Txn_id.Gen.create () in
  let a = Txn_id.Gen.next gen and b = Txn_id.Gen.next gen in
  checkb "distinct" false (Txn_id.equal a b);
  checki "issued" 2 (Txn_id.Gen.issued gen)

(* --- Executor --- *)

let make_executor () =
  let engine = Engine.create () in
  let locks = Lock_manager.create () in
  let waits = ref 0 in
  let executor =
    Executor.create
      ~on_wait:(fun () -> incr waits)
      ~clock:(Clock.of_engine engine) ~locks ~action_time:0.1 ()
  in
  (engine, executor, waits)

let test_executor_duration () =
  let engine, executor, _ = make_executor () in
  let gen = Txn_id.Gen.create () in
  let committed_at = ref nan in
  let steps =
    List.init 4 (fun i -> Executor.update_step ~resource:i)
  in
  Executor.run executor ~owner:(Txn_id.Gen.next gen) ~steps
    ~on_commit:(fun () -> committed_at := Engine.now engine)
    ~on_deadlock:(fun ~cycle:_ -> Alcotest.fail "unexpected deadlock");
  Engine.run engine;
  (* 4 actions x 0.1s, uncontended. *)
  checkf "duration" 0.4 !committed_at;
  checki "done" 0 (Executor.active executor)

let test_executor_empty_commits () =
  let engine, executor, _ = make_executor () in
  let gen = Txn_id.Gen.create () in
  let committed = ref false in
  Executor.run executor ~owner:(Txn_id.Gen.next gen) ~steps:[]
    ~on_commit:(fun () -> committed := true)
    ~on_deadlock:(fun ~cycle:_ -> Alcotest.fail "deadlock");
  checkb "instant commit" true !committed;
  ignore engine

let test_executor_serializes_conflicts () =
  let engine, executor, waits = make_executor () in
  let gen = Txn_id.Gen.create () in
  let order = ref [] in
  let submit tag =
    Executor.run executor ~owner:(Txn_id.Gen.next gen)
      ~steps:[ Executor.update_step ~resource:42 ]
      ~on_commit:(fun () -> order := (tag, Engine.now engine) :: !order)
      ~on_deadlock:(fun ~cycle:_ -> Alcotest.fail "deadlock")
  in
  submit "a";
  submit "b";
  Engine.run engine;
  (match List.rev !order with
  | [ ("a", t1); ("b", t2) ] ->
      checkf "a at 0.1" 0.1 t1;
      checkf "b waits for a" 0.2 t2
  | _ -> Alcotest.fail "both must commit in order");
  checki "one wait" 1 !waits

let test_executor_deadlock_and_restart () =
  let engine, executor, _ = make_executor () in
  let gen = Txn_id.Gen.create () in
  let deadlocks = ref 0 and commits = ref 0 in
  (* Two transactions taking resources in opposite order with a step gap
     forces the classic 2-cycle. *)
  let rec submit resources =
    Executor.run executor ~owner:(Txn_id.Gen.next gen)
      ~steps:(List.map (fun r -> Executor.update_step ~resource:r) resources)
      ~on_commit:(fun () -> incr commits)
      ~on_deadlock:(fun ~cycle:_ ->
        incr deadlocks;
        (* Restart after a beat, as the schemes do. *)
        ignore (Engine.schedule engine ~delay:0.5 (fun () -> submit resources)))
  in
  submit [ 1; 2 ];
  submit [ 2; 1 ];
  Engine.run engine;
  checki "exactly one victim" 1 !deadlocks;
  checki "both eventually commit" 2 !commits

let test_executor_work_runs_under_lock () =
  let engine, executor, _ = make_executor () in
  let gen = Txn_id.Gen.create () in
  let observed = ref [] in
  Executor.run executor ~owner:(Txn_id.Gen.next gen)
    ~steps:
      [
        { Executor.resource = 1; mode = Dangers_lock.Mode.X; cost = None;
          work = (fun () -> observed := 1 :: !observed) };
        { Executor.resource = 2; mode = Dangers_lock.Mode.X; cost = None;
          work = (fun () -> observed := 2 :: !observed) };
      ]
    ~on_commit:(fun () -> observed := 99 :: !observed)
    ~on_deadlock:(fun ~cycle:_ -> Alcotest.fail "deadlock");
  Engine.run engine;
  Alcotest.check (Alcotest.list Alcotest.int) "step order then commit"
    [ 1; 2; 99 ] (List.rev !observed)

let suite =
  [
    Alcotest.test_case "op apply" `Quick test_op_apply;
    Alcotest.test_case "op commutes" `Quick test_op_commutes;
    Alcotest.test_case "all_commute" `Quick test_all_commute;
    QCheck_alcotest.to_alcotest increments_commute_prop;
    Alcotest.test_case "txn id gen" `Quick test_txn_id_gen;
    Alcotest.test_case "executor duration" `Quick test_executor_duration;
    Alcotest.test_case "executor empty commits" `Quick test_executor_empty_commits;
    Alcotest.test_case "executor serializes conflicts" `Quick test_executor_serializes_conflicts;
    Alcotest.test_case "executor deadlock and restart" `Quick test_executor_deadlock_and_restart;
    Alcotest.test_case "executor work under lock" `Quick test_executor_work_runs_under_lock;
  ]
