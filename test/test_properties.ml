(* Cross-cutting property tests: randomized scripts against reference
   models and end-to-end convergence invariants. *)

module Params = Dangers_analytic.Params
module Op = Dangers_txn.Op
module Oid = Dangers_storage.Oid
module Fstore = Dangers_storage.Store.Fstore
module Engine = Dangers_sim.Engine
module Clock = Dangers_runtime.Clock
module Network = Dangers_net.Network
module Delay = Dangers_net.Delay
module Update_log = Dangers_storage.Update_log
module Mode = Dangers_lock.Mode
module Lock_table = Dangers_lock.Lock_table
module Rng = Dangers_util.Rng
module Common = Dangers_replication.Common
module Lazy_group = Dangers_replication.Lazy_group
module Quorum = Dangers_replication.Quorum
module Acceptance = Dangers_core.Acceptance
module Two_tier = Dangers_core.Two_tier
module Connectivity = Dangers_net.Connectivity

let o n = Oid.of_int n

(* --- Network: no message is lost or duplicated, whatever the
   connectivity script does, once everyone reconnects. --- *)

let network_conservation =
  QCheck.Test.make ~name:"network: delivered exactly once after reconnect-all"
    ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 0 40)
              (pair (int_range 0 5) (int_range 0 3)))
    (fun script ->
      let engine = Engine.create () in
      let received = Hashtbl.create 64 in
      let network =
        Network.create ~clock:(Clock.of_engine engine) ~rng:(Rng.create ~seed:1) ~delay:Delay.Zero
          ~nodes:4
          ~deliver:(fun ~src:_ ~dst:_ id ->
            Hashtbl.replace received id (1 + Option.value ~default:0 (Hashtbl.find_opt received id)))
          ()
      in
      let sent = ref 0 in
      List.iteri
        (fun i (a, node) ->
          match a with
          | 0 | 1 | 2 ->
              let src = a and dst = (a + 1 + node) mod 4 in
              if src <> dst then begin
                Network.send network ~src ~dst i;
                incr sent;
                Hashtbl.replace received i
                  (Option.value ~default:0 (Hashtbl.find_opt received i))
              end
          | 3 -> Network.set_connected network ~node false
          | 4 -> Network.set_connected network ~node true
          | _ -> Engine.run engine ~until:(Engine.now engine +. 1.))
        script;
      for node = 0 to 3 do
        Network.set_connected network ~node true
      done;
      Engine.run engine;
      Network.messages_parked network = 0
      && Hashtbl.fold (fun _ n acc -> acc && n = 1) received true
      && Network.messages_delivered network = !sent)

(* --- Engine: fired callbacks come in non-decreasing time order and
   cancelled events never fire. --- *)

let engine_ordering =
  QCheck.Test.make ~name:"engine: time-ordered, cancelled never fire" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 0 30)
              (pair (float_range 0. 100.) bool))
    (fun script ->
      let engine = Engine.create () in
      let fired = ref [] in
      let cancelled_fired = ref false in
      List.iteri
        (fun i (delay, cancel) ->
          let event =
            Engine.schedule engine ~delay (fun () ->
                if cancel then cancelled_fired := true
                else fired := (Engine.now engine, i) :: !fired)
          in
          if cancel then Engine.cancel engine event)
        script;
      Engine.run engine;
      let times = List.rev_map fst !fired in
      let rec sorted = function
        | a :: (b :: _ as rest) -> a <= b && sorted rest
        | [ _ ] | [] -> true
      in
      (not !cancelled_fired) && sorted times)

(* --- Update log vs a pure reference. --- *)

let update_log_matches_reference =
  QCheck.Test.make ~name:"update log: matches list reference" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 0 40) (int_range 0 2))
    (fun script ->
      let log = Update_log.create () in
      let cursor = Update_log.register log in
      let appended = ref [] and read = ref [] in
      List.iteri
        (fun i action ->
          match action with
          | 0 | 1 ->
              Update_log.append log i;
              appended := i :: !appended
          | _ -> read := !read @ Update_log.read_new log cursor)
        script;
      read := !read @ Update_log.read_new log cursor;
      !read = List.rev !appended)

(* --- Lock table: same-resource X grants follow request order. --- *)

let lock_fifo =
  QCheck.Test.make ~name:"lock table: X grants are FIFO" ~count:200
    QCheck.(int_range 2 10)
    (fun waiters ->
      let table = Lock_table.create () in
      let order = ref [] in
      ignore
        (Lock_table.acquire table ~owner:0 ~resource:1 ~mode:Mode.X
           ~on_grant:(fun () -> ()));
      for owner = 1 to waiters do
        ignore
          (Lock_table.acquire table ~owner ~resource:1 ~mode:Mode.X
             ~on_grant:(fun () ->
               order := owner :: !order;
               Lock_table.release_all table ~owner))
      done;
      Lock_table.release_all table ~owner:0;
      List.rev !order = List.init waiters (fun i -> i + 1))

(* --- Lazy group: any assign workload converges after drain under
   timestamp priority. --- *)

let lazy_group_always_converges =
  QCheck.Test.make ~name:"lazy group: timestamp rule converges" ~count:60
    QCheck.(list_of_size (QCheck.Gen.int_range 1 15)
              (triple (int_range 0 2) (int_range 0 19) (float_range 0. 100.)))
    (fun txns ->
      let params =
        { Params.default with nodes = 3; db_size = 20; tps = 0.001; actions = 1 }
      in
      let sys = Lazy_group.create params ~seed:7 in
      List.iter
        (fun (node, obj, value) ->
          Lazy_group.submit sys ~node [ Op.Assign (o obj, value) ])
        txns;
      Common.drain (Lazy_group.base sys);
      let stores = (Lazy_group.base sys).Common.stores in
      Array.for_all (fun s -> Fstore.content_equal stores.(0) s) stores)

(* --- Two-tier: random increment workloads with random disconnect cycles
   converge to the exact sums (commutativity end to end). --- *)

let two_tier_exact_sums =
  QCheck.Test.make
    ~name:"two-tier: increments converge to exact sums through disconnects"
    ~count:25
    QCheck.(pair (int_range 5 40)
              (list_of_size (QCheck.Gen.int_range 1 20)
                 (triple (int_range 0 3) (int_range 0 19)
                    (float_range (-50.) 50.))))
    (fun (disconnected_time, txns) ->
      let params =
        {
          Params.default with
          nodes = 4;
          db_size = 20;
          tps = 0.5;
          actions = 1;
          time_between_disconnects = 10.;
          disconnected_time = float_of_int disconnected_time;
        }
      in
      let sys = Two_tier.create ~initial_value:100. ~base_nodes:2 params ~seed:11 in
      let clock = (Two_tier.base sys).Common.clock in
      let expected = Array.make 20 100. in
      (* Interleave submissions with engine progress so connectivity varies. *)
      List.iter
        (fun (node, obj, delta) ->
          expected.(obj) <- expected.(obj) +. delta;
          Two_tier.submit sys ~node [ Op.Increment (o obj, delta) ];
          Clock.run clock ~until:(Clock.now clock +. 3.))
        txns;
      Two_tier.quiesce_and_sync sys;
      let store = (Two_tier.base sys).Common.stores.(0) in
      Two_tier.converged sys
      && Two_tier.base_history_serializable sys
      && Array.for_all Fun.id
           (Array.mapi
              (fun i value -> Float.abs (Fstore.read store (o i) -. value) < 1e-6)
              expected))

(* --- Quorum monotonicity. --- *)

let quorum_monotone =
  QCheck.Test.make ~name:"quorum: adding an up node never hurts" ~count:300
    QCheck.(pair (int_range 1 12) (list_of_size (QCheck.Gen.return 12) bool))
    (fun (node, ups) ->
      let q = Quorum.majority ~n:12 in
      let up = Array.of_list ups in
      let more = Array.copy up in
      more.((node - 1) mod 12) <- true;
      (not (Quorum.can_write q ~up)) || Quorum.can_write q ~up:more)

(* --- Acceptance algebra. --- *)

let acceptance_all_conjunction =
  QCheck.Test.make ~name:"acceptance: All = conjunction" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 0 5)
              (pair (float_range (-10.) 10.) (float_range (-10.) 10.)))
    (fun pairs ->
      let outcomes =
        List.mapi
          (fun i (tentative, base) -> { Acceptance.oid = o i; tentative; base })
          pairs
      in
      let criteria =
        [ Acceptance.Non_negative; Acceptance.Within 1.; Acceptance.At_most_tentative ]
      in
      Acceptance.accept (Acceptance.All criteria) outcomes
      = List.for_all (fun c -> Acceptance.accept c outcomes) criteria)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      network_conservation;
      engine_ordering;
      update_log_matches_reference;
      lock_fifo;
      lazy_group_always_converges;
      two_tier_exact_sums;
      quorum_monotone;
      acceptance_all_conjunction;
    ]
