(* Delay, Network, Connectivity tests. *)

module Delay = Dangers_net.Delay
module Network = Dangers_net.Network
module Connectivity = Dangers_net.Connectivity
module Engine = Dangers_sim.Engine
module Clock = Dangers_runtime.Clock
module Rng = Dangers_util.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

let test_delay_models () =
  let rng = Rng.create ~seed:1 in
  checkf "zero" 0. (Delay.sample Delay.Zero rng);
  checkf "constant" 0.5 (Delay.sample (Delay.Constant 0.5) rng);
  for _ = 1 to 100 do
    let d = Delay.sample (Delay.Uniform { lo = 1.; hi = 2. }) rng in
    checkb "uniform in range" true (d >= 1. && d < 2.);
    checkb "exponential non-negative" true
      (Delay.sample (Delay.Exponential { mean = 0.3 }) rng >= 0.)
  done;
  Alcotest.check_raises "negative constant"
    (Invalid_argument "Delay.Constant: negative delay") (fun () ->
      Delay.validate (Delay.Constant (-1.)))

let make_network ?(delay = Delay.Zero) ~nodes () =
  let engine = Engine.create () in
  let received = ref [] in
  let network =
    Network.create ~clock:(Clock.of_engine engine) ~rng:(Rng.create ~seed:9) ~delay ~nodes
      ~deliver:(fun ~src ~dst msg -> received := (src, dst, msg) :: !received)
      ()
  in
  (engine, network, received)

let test_send_and_broadcast () =
  let engine, network, received = make_network ~nodes:3 () in
  Network.send network ~src:0 ~dst:2 "hello";
  Network.broadcast network ~src:1 "all";
  Engine.run engine;
  checki "three deliveries" 3 (List.length !received);
  checkb "direct message arrived" true (List.mem (0, 2, "hello") !received);
  checkb "broadcast to 0" true (List.mem (1, 0, "all") !received);
  checkb "broadcast to 2" true (List.mem (1, 2, "all") !received);
  checki "sent counter" 3 (Network.messages_sent network);
  checki "delivered counter" 3 (Network.messages_delivered network)

let test_send_validation () =
  let _, network, _ = make_network ~nodes:2 () in
  Alcotest.check_raises "self send" (Invalid_argument "Network.send: src = dst")
    (fun () -> Network.send network ~src:0 ~dst:0 "x")

let test_constant_delay_timing () =
  let engine, network, received = make_network ~delay:(Delay.Constant 2.0) ~nodes:2 () in
  let arrival = ref nan in
  Network.send network ~src:0 ~dst:1 "m";
  ignore received;
  (* Watch the clock at delivery via a fresh network with a closure. *)
  let network2 =
    Network.create ~clock:(Clock.of_engine engine) ~rng:(Rng.create ~seed:1) ~delay:(Delay.Constant 2.0)
      ~nodes:2
      ~deliver:(fun ~src:_ ~dst:_ _ -> arrival := Engine.now engine)
      ()
  in
  Network.send network2 ~src:0 ~dst:1 "m2";
  Engine.run engine;
  checkf "delivered after the delay" 2.0 !arrival

let test_store_and_forward () =
  let engine, network, received = make_network ~nodes:2 () in
  Network.set_connected network ~node:1 false;
  Network.send network ~src:0 ~dst:1 "parked";
  Engine.run engine;
  checki "nothing delivered while down" 0 (List.length !received);
  checki "one parked" 1 (Network.messages_parked network);
  Network.set_connected network ~node:1 true;
  Engine.run engine;
  checki "flushed at reconnect" 1 (List.length !received);
  checki "no parked left" 0 (Network.messages_parked network)

let test_sender_down_parks () =
  let engine, network, received = make_network ~nodes:2 () in
  Network.set_connected network ~node:0 false;
  Network.send network ~src:0 ~dst:1 "deferred";
  Engine.run engine;
  checki "held at sender" 0 (List.length !received);
  Network.set_connected network ~node:0 true;
  Engine.run engine;
  checki "sent on reconnect" 1 (List.length !received)

let test_connectivity_observer () =
  let engine, network, _ = make_network ~nodes:2 () in
  let events = ref [] in
  Network.on_connectivity_change network (fun ~node ~connected ->
      events := (node, connected) :: !events);
  Network.set_connected network ~node:1 false;
  Network.set_connected network ~node:1 false;
  (* no-op *)
  Network.set_connected network ~node:1 true;
  ignore engine;
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.bool))
    "observer saw both changes"
    [ (1, false); (1, true) ]
    (List.rev !events)

let test_day_cycle_schedule () =
  let engine = Engine.create () in
  let trace = ref [] in
  let spec = Connectivity.day_cycle ~connected:10. ~disconnected:5. in
  let schedule =
    Connectivity.install ~clock:(Clock.of_engine engine) ~rng:(Rng.create ~seed:3) ~spec
      ~set_connected:(fun state -> trace := (Engine.now engine, state) :: !trace)
  in
  Engine.run engine ~until:31.;
  Connectivity.stop schedule;
  (* t=0 connected, t=10 down, t=15 up, t=25 down, t=30 up. *)
  Alcotest.check
    (Alcotest.list (Alcotest.pair (Alcotest.float 1e-9) Alcotest.bool))
    "fixed alternation"
    [ (0., true); (10., false); (15., true); (25., false); (30., true) ]
    (List.rev !trace);
  checki "toggles" 4 (Connectivity.toggles schedule)

let test_base_node_never_disconnects () =
  let engine = Engine.create () in
  let changes = ref 0 in
  let _schedule =
    Connectivity.install ~clock:(Clock.of_engine engine) ~rng:(Rng.create ~seed:4)
      ~spec:Connectivity.base_node
      ~set_connected:(fun _ -> incr changes)
  in
  Engine.run engine ~until:1000.;
  checki "initial set only" 1 !changes;
  checkb "spec recognized" true (Connectivity.always_connected Connectivity.base_node)

let test_stop_cancels_inflight_toggle () =
  let engine = Engine.create () in
  let trace = ref [] in
  let spec = Connectivity.day_cycle ~connected:10. ~disconnected:5. in
  let schedule =
    Connectivity.install ~clock:(Clock.of_engine engine) ~rng:(Rng.create ~seed:3) ~spec
      ~set_connected:(fun state -> trace := (Engine.now engine, state) :: !trace)
  in
  (* Run past the first toggle; the next one (t=15) is already armed on the
     heap when we stop. It must never fire — neither the scheduled event
     nor any toggle it would have re-armed. *)
  Engine.run engine ~until:12.;
  Connectivity.stop schedule;
  let frozen = !trace in
  Engine.run engine;
  Alcotest.check
    (Alcotest.list (Alcotest.pair (Alcotest.float 1e-9) Alcotest.bool))
    "no late toggle after stop" frozen !trace;
  checki "toggle count frozen" 1 (Connectivity.toggles schedule);
  (* Stopping twice stays quiet. *)
  Connectivity.stop schedule;
  Engine.run engine ~until:100.;
  checki "still frozen" 1 (Connectivity.toggles schedule)

let faulty_network ~faults ~nodes () =
  let engine = Engine.create () in
  let received = ref [] in
  let network =
    Network.create ~faults ~clock:(Clock.of_engine engine) ~rng:(Rng.create ~seed:9)
      ~delay:Delay.Zero ~nodes
      ~deliver:(fun ~src ~dst msg ->
        received := (src, dst, msg, Engine.now engine) :: !received)
      ()
  in
  (engine, network, received)

let test_fault_hook_drop_and_duplicate () =
  (* Drop every 0->1 message, duplicate every 1->0 message. *)
  let faults =
    {
      Network.no_faults with
      on_transmit =
        (fun ~src ~dst:_ -> if src = 0 then Network.Drop else Network.Duplicate);
    }
  in
  let engine, network, received = faulty_network ~faults ~nodes:2 () in
  Network.send network ~src:0 ~dst:1 "lost";
  Network.send network ~src:1 ~dst:0 "twice";
  Engine.run engine;
  checki "only the duplicated message arrives" 2 (List.length !received);
  checkb "dropped one never lands" false
    (List.exists (fun (_, _, m, _) -> m = "lost") !received);
  checki "drop counted" 1 (Network.messages_dropped network);
  checki "duplicate counted" 1 (Network.messages_duplicated network);
  checki "delivered counts both copies" 2 (Network.messages_delivered network)

let test_fault_hook_extra_delay () =
  let faults =
    {
      Network.no_faults with
      on_transmit = (fun ~src:_ ~dst:_ -> Network.Delay_extra 3.);
    }
  in
  let engine, network, received = faulty_network ~faults ~nodes:2 () in
  Network.send network ~src:0 ~dst:1 "late";
  Engine.run engine;
  match !received with
  | [ (_, _, _, at) ] -> checkf "extra latency applied" 3. at
  | l -> Alcotest.failf "expected one delivery, got %d" (List.length l)

let test_fault_hook_blocked_parks_until_flush () =
  let cut = ref true in
  let faults =
    { Network.no_faults with blocked = (fun ~src:_ ~dst:_ -> !cut) }
  in
  let engine, network, received = faulty_network ~faults ~nodes:2 () in
  Network.send network ~src:0 ~dst:1 "held";
  Engine.run engine;
  checki "blocked message parks at the sender" 1
    (Network.messages_parked network);
  checki "nothing delivered" 0 (List.length !received);
  (* Heal without any connectivity change: only flush_node reroutes. *)
  cut := false;
  Network.flush_node network ~node:0;
  Engine.run engine;
  checki "flush delivers it" 1 (List.length !received);
  checki "park emptied" 0 (Network.messages_parked network)

let suite =
  [
    Alcotest.test_case "delay models" `Quick test_delay_models;
    Alcotest.test_case "send and broadcast" `Quick test_send_and_broadcast;
    Alcotest.test_case "send validation" `Quick test_send_validation;
    Alcotest.test_case "constant delay timing" `Quick test_constant_delay_timing;
    Alcotest.test_case "store and forward" `Quick test_store_and_forward;
    Alcotest.test_case "sender down parks" `Quick test_sender_down_parks;
    Alcotest.test_case "connectivity observer" `Quick test_connectivity_observer;
    Alcotest.test_case "day cycle schedule" `Quick test_day_cycle_schedule;
    Alcotest.test_case "base node never disconnects" `Quick test_base_node_never_disconnects;
    Alcotest.test_case "stop cancels in-flight toggle" `Quick
      test_stop_cancels_inflight_toggle;
    Alcotest.test_case "fault hook drop and duplicate" `Quick
      test_fault_hook_drop_and_duplicate;
    Alcotest.test_case "fault hook extra delay" `Quick
      test_fault_hook_extra_delay;
    Alcotest.test_case "fault hook blocked parks" `Quick
      test_fault_hook_blocked_parks_until_flush;
  ]
