(* Fault plan / injector / recovery / fuzzer tests — the fast, deterministic
   slice that runs in tier-1. The open-ended random sweep lives behind the
   @fuzz alias (test/fuzz). *)

module Fault_plan = Dangers_fault.Fault_plan
module Fault_injector = Dangers_fault.Fault_injector
module Recovery = Dangers_fault.Recovery
module Invariants = Dangers_fault.Invariants
module Fuzz = Dangers_fault.Fuzz
module Network = Dangers_net.Network
module Engine = Dangers_sim.Engine
module Clock = Dangers_runtime.Clock
module Trace = Dangers_sim.Trace
module Rng = Dangers_util.Rng
module Fstore = Dangers_storage.Store.Fstore
module Oid = Dangers_storage.Oid
module Timestamp = Dangers_storage.Timestamp

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* --- Fault_plan --- *)

let test_plan_deterministic () =
  let gen () =
    Fault_plan.generate ~rng:(Rng.create ~seed:11) ~nodes:5 ~horizon:30.
      Fault_plan.chaotic
  in
  let a = gen () and b = gen () in
  Alcotest.check Alcotest.string "same seed, same plan"
    (Format.asprintf "%a" Fault_plan.pp a)
    (Format.asprintf "%a" Fault_plan.pp b)

let test_plan_well_formed () =
  let plan =
    Fault_plan.generate ~rng:(Rng.create ~seed:3) ~nodes:6 ~horizon:50.
      { Fault_plan.chaotic with crashes_per_node = 4.; partitions = 4. }
  in
  (* Per-node crash windows never overlap. *)
  let by_node = Hashtbl.create 8 in
  List.iter
    (fun (c : Fault_plan.crash) ->
      checkb "crash before restart" true (c.at <= c.up_at);
      let prev = Option.value ~default:(-1.) (Hashtbl.find_opt by_node c.node) in
      checkb "no overlap per node" true (c.at >= prev);
      Hashtbl.replace by_node c.node c.up_at)
    plan.Fault_plan.crash_list;
  (* Partitions are sorted and disjoint. *)
  ignore
    (List.fold_left
       (fun prev_heal (p : Fault_plan.partition) ->
         checkb "partitions disjoint" true (p.starts >= prev_heal);
         checkb "partition spans forward" true (p.heals >= p.starts);
         p.heals)
       (-1.) plan.Fault_plan.partition_list)

let test_plan_clean_is_empty () =
  let plan =
    Fault_plan.generate ~rng:(Rng.create ~seed:1) ~nodes:4 ~horizon:10.
      Fault_plan.clean
  in
  checkb "no crashes" true (Fault_plan.crash_free plan);
  checki "no partitions" 0 (List.length plan.Fault_plan.partition_list);
  checkb "lossless" true (Fault_plan.lossless_messages plan)

let test_plan_crashable_subset () =
  let plan =
    Fault_plan.generate ~rng:(Rng.create ~seed:5) ~nodes:6 ~crashable:[ 4; 5 ]
      ~horizon:40.
      { Fault_plan.clean with crashes_per_node = 3.; mean_downtime = 2. }
  in
  checkb "some crashes sampled" true (plan.Fault_plan.crash_list <> []);
  List.iter
    (fun (c : Fault_plan.crash) ->
      checkb "only crashable nodes crash" true (c.node = 4 || c.node = 5))
    plan.Fault_plan.crash_list

(* --- Fault_injector against a raw network --- *)

let manual_plan ?(spec = Fault_plan.clean) ?(crashes = []) ?(partitions = [])
    ~nodes () =
  {
    Fault_plan.spec;
    horizon = 100.;
    nodes;
    crash_list = crashes;
    partition_list = partitions;
  }

let test_injector_drops_messages () =
  let engine = Engine.create () in
  let plan =
    manual_plan ~spec:{ Fault_plan.clean with drop_prob = 1. } ~nodes:2 ()
  in
  let injector = Fault_injector.create ~plan ~rng:(Rng.create ~seed:1) in
  let received = ref 0 in
  let network =
    Network.create
      ~faults:(Fault_injector.faults injector)
      ~clock:(Clock.of_engine engine) ~rng:(Rng.create ~seed:2) ~delay:Dangers_net.Delay.Zero ~nodes:2
      ~deliver:(fun ~src:_ ~dst:_ () -> incr received)
      ()
  in
  for _ = 1 to 5 do
    Network.send network ~src:0 ~dst:1 ()
  done;
  Engine.run engine;
  checki "nothing arrives" 0 !received;
  checki "drops counted" 5 (Network.messages_dropped network)

let test_injector_duplicates_messages () =
  let engine = Engine.create () in
  let plan =
    manual_plan ~spec:{ Fault_plan.clean with dup_prob = 1. } ~nodes:2 ()
  in
  let injector = Fault_injector.create ~plan ~rng:(Rng.create ~seed:1) in
  let received = ref 0 in
  let network =
    Network.create
      ~faults:(Fault_injector.faults injector)
      ~clock:(Clock.of_engine engine) ~rng:(Rng.create ~seed:2) ~delay:Dangers_net.Delay.Zero ~nodes:2
      ~deliver:(fun ~src:_ ~dst:_ () -> incr received)
      ()
  in
  Network.send network ~src:0 ~dst:1 ();
  Engine.run engine;
  checki "two copies arrive" 2 !received;
  checki "duplicates counted" 1 (Network.messages_duplicated network)

let test_injector_partition_parks_then_heals () =
  let engine = Engine.create () in
  let partition =
    { Fault_plan.starts = 1.; heals = 2.; block_of = [| 0; 0; 1 |] }
  in
  let plan = manual_plan ~partitions:[ partition ] ~nodes:3 () in
  let injector = Fault_injector.create ~plan ~rng:(Rng.create ~seed:1) in
  let arrivals = ref [] in
  let network =
    Network.create
      ~faults:(Fault_injector.faults injector)
      ~clock:(Clock.of_engine engine) ~rng:(Rng.create ~seed:2) ~delay:Dangers_net.Delay.Zero ~nodes:3
      ~deliver:(fun ~src:_ ~dst:_ label ->
        arrivals := (label, Engine.now engine) :: !arrivals)
      ()
  in
  Fault_injector.start injector ~clock:(Clock.of_engine engine)
    ~flush_node:(fun ~node -> Network.flush_node network ~node)
    ();
  (* Across the cut while split: parked. Within a block: flows. *)
  ignore
    (Engine.schedule_at engine ~time:1.5 (fun () ->
         Network.send network ~src:0 ~dst:2 "cross";
         Network.send network ~src:0 ~dst:1 "same-block"));
  Engine.run engine;
  let find label = List.assoc label !arrivals in
  checkf "same-block flows during the split" 1.5 (find "same-block");
  checkf "cross-cut waits for the heal" 2. (find "cross");
  checki "one partition fired" 1 (Fault_injector.partitions_fired injector)

let test_injector_crash_restart_cycle () =
  let engine = Engine.create () in
  let crashes = [ { Fault_plan.node = 1; at = 1.; up_at = 3. } ] in
  let plan = manual_plan ~crashes ~nodes:2 () in
  let injector = Fault_injector.create ~plan ~rng:(Rng.create ~seed:1) in
  let log = ref [] in
  let push tag = log := (tag, Engine.now engine) :: !log in
  Fault_injector.start injector ~clock:(Clock.of_engine engine)
    ~set_connected:(fun ~node state ->
      push (Printf.sprintf "connect n%d %b" node state))
    ~on_crash:(fun ~node -> push (Printf.sprintf "crash n%d" node))
    ~on_restart:(fun ~node -> push (Printf.sprintf "restart n%d" node))
    ();
  ignore
    (Engine.schedule_at engine ~time:2. (fun () ->
         checkb "down mid-window" true (Fault_injector.is_down injector ~node:1)));
  Engine.run engine;
  checkb "up after restart" false (Fault_injector.is_down injector ~node:1);
  checki "one crash fired" 1 (Fault_injector.crashes_fired injector);
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.string (Alcotest.float 1e-9)))
    "disconnect before wipe; replay before reconnect"
    [
      ("connect n1 false", 1.); ("crash n1", 1.);
      ("restart n1", 3.); ("connect n1 true", 3.);
    ]
    (List.rev !log)

let test_injector_stop_restores () =
  let engine = Engine.create () in
  let crashes = [ { Fault_plan.node = 0; at = 1.; up_at = 50. } ] in
  let partition =
    { Fault_plan.starts = 1.; heals = 60.; block_of = [| 0; 1 |] }
  in
  let plan = manual_plan ~crashes ~partitions:[ partition ] ~nodes:2 () in
  let injector = Fault_injector.create ~plan ~rng:(Rng.create ~seed:1) in
  let restarts = ref 0 in
  Fault_injector.start injector ~clock:(Clock.of_engine engine)
    ~on_restart:(fun ~node:_ -> incr restarts)
    ();
  Engine.run engine ~until:2.;
  checkb "down at stop time" true (Fault_injector.is_down injector ~node:0);
  Fault_injector.stop injector;
  checkb "restored" false (Fault_injector.is_down injector ~node:0);
  checki "restart hook ran" 1 !restarts;
  (* The cancelled restart/heal events must not fire later. *)
  Engine.run engine;
  checki "no second restart" 1 !restarts

let test_injector_traces_faults () =
  let engine = Engine.create () in
  let tracer = Trace.create () in
  Engine.set_tracer engine (Some tracer);
  let crashes = [ { Fault_plan.node = 0; at = 1.; up_at = 2. } ] in
  let plan = manual_plan ~crashes ~nodes:2 () in
  let injector = Fault_injector.create ~plan ~rng:(Rng.create ~seed:1) in
  Fault_injector.start injector ~clock:(Clock.of_engine engine) ();
  Engine.run engine;
  let events =
    List.rev (Trace.fold tracer ~init:[] (fun acc e -> e.Trace.event :: acc))
  in
  checkb "crash traced" true
    (List.mem (Trace.Node_crashed { node = 0 }) events);
  checkb "restart traced" true
    (List.mem (Trace.Node_restarted { node = 0 }) events)

(* --- Recovery --- *)

let stamp counter = { Timestamp.counter; node = 0 }

let test_recovery_round_trip () =
  let store = Fstore.create ~db_size:4 ~init:(fun _ -> 0.) in
  let recovery = Recovery.attach ~node:0 ~initial_value:0. store in
  Fstore.write store (Oid.of_int 0) 10. (stamp 1);
  Fstore.write store (Oid.of_int 2) 5. (stamp 2);
  Fstore.write store (Oid.of_int 0) 11. (stamp 3);
  checki "every write journaled" 3 (Recovery.journal_length recovery);
  Recovery.crash recovery;
  Recovery.restart recovery;
  checkf "value restored" 11. (Fstore.read store (Oid.of_int 0));
  checkf "other object restored" 5. (Fstore.read store (Oid.of_int 2));
  checkb "stamp restored" true
    (Timestamp.equal (stamp 3) (Fstore.stamp store (Oid.of_int 0)));
  checki "one crash" 1 (Recovery.crashes recovery);
  Alcotest.check (Alcotest.list Alcotest.string) "no violations" []
    (Recovery.violations recovery);
  (* Recovery's own wipe/replay writes must not pollute the journal. *)
  checki "journal untouched by recovery" 3 (Recovery.journal_length recovery)

let test_recovery_detects_unjournaled_writes () =
  let store = Fstore.create ~db_size:4 ~init:(fun _ -> 0.) in
  (* A mutation before attach escapes the journal: completeness must fail. *)
  Fstore.write store (Oid.of_int 1) 99. (stamp 1);
  let recovery = Recovery.attach ~node:3 ~initial_value:0. store in
  Fstore.write store (Oid.of_int 0) 1. (stamp 2);
  Recovery.crash recovery;
  checki "completeness violation recorded" 1
    (List.length (Recovery.violations recovery));
  checkb "violation names the node" true
    (String.length (List.hd (Recovery.violations recovery)) > 0)

let test_recovery_journals_all_mutation_paths () =
  let store = Fstore.create ~db_size:2 ~init:(fun _ -> 0.) in
  let recovery = Recovery.attach ~node:0 ~initial_value:0. store in
  ignore
    (Fstore.apply_if_newer store (Oid.of_int 0) 7. (stamp 1));
  ignore
    (Fstore.apply_if_current store (Oid.of_int 1) ~old_stamp:Timestamp.zero 3.
       (stamp 2));
  let src = Fstore.create ~db_size:2 ~init:(fun _ -> 42.) in
  Fstore.overwrite_from store ~src;
  (* 2 conditional applies + 2 overwrite entries. *)
  checki "all paths journaled" 4 (Recovery.journal_length recovery);
  Recovery.crash recovery;
  Alcotest.check (Alcotest.list Alcotest.string) "complete" []
    (Recovery.violations recovery)

(* --- Fuzz: deterministic fast slice --- *)

let test_fuzz_case_deterministic () =
  let case =
    { Fuzz.scheme = Fuzz.Lazy_group; seed = 123; nodes = 4; txns = 30;
      level = Fuzz.Chaotic }
  in
  let a = Fuzz.run case and b = Fuzz.run case in
  checki "same submissions" a.Fuzz.txns_submitted b.Fuzz.txns_submitted;
  checki "same crashes" a.Fuzz.crashes_fired b.Fuzz.crashes_fired;
  checki "same violations" (List.length a.Fuzz.violations)
    (List.length b.Fuzz.violations);
  Alcotest.check Alcotest.string "same plan"
    (Format.asprintf "%a" Fault_plan.pp a.Fuzz.plan)
    (Format.asprintf "%a" Fault_plan.pp b.Fuzz.plan)

let test_fuzz_invariants_hold_spot () =
  List.iter
    (fun scheme ->
      List.iter
        (fun level ->
          let case = { Fuzz.scheme; seed = 7; nodes = 3; txns = 25; level } in
          let outcome = Fuzz.run case in
          Alcotest.check Alcotest.int
            (Printf.sprintf "%s/%s clean run" (Fuzz.scheme_name scheme)
               (Fuzz.level_name level))
            0
            (List.length outcome.Fuzz.violations))
        [ Fuzz.Clean; Fuzz.Lossless; Fuzz.Chaotic ])
    Fuzz.all_schemes

let test_fuzz_sabotage_caught () =
  let find_violation scheme invariant =
    List.exists
      (fun seed ->
        let case =
          { Fuzz.scheme; seed; nodes = 4; txns = 100; level = Fuzz.Lossless }
        in
        List.exists
          (fun (v : Invariants.violation) ->
            v.Invariants.invariant = invariant)
          (Fuzz.run ~sabotage:true case).Fuzz.violations)
      [ 1; 2; 3; 4; 5 ]
  in
  checkb "skipped acceptance produces base delusion" true
    (find_violation Fuzz.Two_tier "two-tier-base-1SR");
  checkb "lossy rule loses updates" true
    (find_violation Fuzz.Lazy_group "lazy-group-lossless-sum")

let test_fuzz_names_round_trip () =
  List.iter
    (fun s ->
      Alcotest.check Alcotest.bool "scheme name round-trips" true
        (Fuzz.scheme_of_name (Fuzz.scheme_name s) = Some s))
    Fuzz.all_schemes;
  List.iter
    (fun l ->
      Alcotest.check Alcotest.bool "level name round-trips" true
        (Fuzz.level_of_name (Fuzz.level_name l) = Some l))
    [ Fuzz.Clean; Fuzz.Lossless; Fuzz.Chaotic ];
  checkb "replay command mentions the seed" true
    (let case =
       { Fuzz.scheme = Fuzz.Two_tier; seed = 99; nodes = 2; txns = 5;
         level = Fuzz.Clean }
     in
     let cmd = Fuzz.replay_command case in
     String.length cmd > 0
     && Option.is_some
          (String.index_opt cmd '9' (* crude: seed digits present *)))

(* --- Fault injection under parallel execution ---

   The partitioned eager scheme consults its fault hooks from partition
   windows that may run on several domains, so the hooks must be pure
   functions of (src, dst) — and a fixed plan must then replay
   byte-identically at any --sim-domains. *)

module Par_eager = Dangers_replication.Par_eager
module Params = Dangers_analytic.Params
module Observe = Dangers_sim.Observe

(* A deterministic lossy plan: node 3 is cut off from node 0's applies,
   one pair duplicates, one pair reorders. Pure in (src, dst), as the
   parallel engine requires. *)
let pure_faults =
  {
    Network.blocked = (fun ~src ~dst -> src = 0 && dst = 3);
    on_transmit =
      (fun ~src ~dst ->
        match ((2 * src) + dst) mod 7 with
        | 0 -> Network.Drop
        | 1 -> Network.Duplicate
        | 2 -> Network.Delay_extra 0.075
        | _ -> Network.Pass);
  }

let par_eager_faulty_state ~domains =
  let params = { Params.default with db_size = 150; nodes = 4; tps = 3. } in
  let t = Par_eager.create ~faults:pure_faults params ~seed:23 in
  Par_eager.start t;
  Par_eager.measure ~domains t ~warmup:1. ~span:10.;
  Par_eager.quiesce ~domains t;
  ( Format.asprintf "%a" Dangers_replication.Repl_stats.pp_summary
      (Par_eager.summary t),
    List.init 4 (Par_eager.store_fingerprint t),
    Par_eager.diagnostics t )

let test_par_eager_faults_deterministic () =
  let (_, fingerprints, diags) as serial = par_eager_faulty_state ~domains:1 in
  checkb "plan actually bites" true (List.assoc "apply_dropped" diags > 0.);
  (* drops leave real divergence — determinism below is not vacuous *)
  checkb "blocked replica diverges" true
    (List.nth fingerprints 3 <> List.nth fingerprints 1);
  List.iter
    (fun domains ->
      checkb
        (Printf.sprintf "faulty replay identical at domains=%d" domains)
        true
        (par_eager_faulty_state ~domains = serial))
    [ 2; 4 ]

(* The legacy single-heap fuzzer ignores the ambient domain budget — an
   installed budget must not leak into its RNG streams or plans. *)
let test_fuzz_ignores_sim_domains () =
  let case =
    { Fuzz.scheme = Fuzz.Eager_group; seed = 77; nodes = 3; txns = 20;
      level = Fuzz.Chaotic }
  in
  let plain = Fuzz.run case in
  let budgeted = Observe.with_domains 2 (fun () -> Fuzz.run case) in
  checki "same submissions" plain.Fuzz.txns_submitted
    budgeted.Fuzz.txns_submitted;
  checki "same crashes" plain.Fuzz.crashes_fired budgeted.Fuzz.crashes_fired;
  checki "same violations"
    (List.length plain.Fuzz.violations)
    (List.length budgeted.Fuzz.violations);
  Alcotest.check Alcotest.string "same plan"
    (Format.asprintf "%a" Fault_plan.pp plain.Fuzz.plan)
    (Format.asprintf "%a" Fault_plan.pp budgeted.Fuzz.plan)

let suite =
  [
    Alcotest.test_case "plan deterministic" `Quick test_plan_deterministic;
    Alcotest.test_case "plan well-formed" `Quick test_plan_well_formed;
    Alcotest.test_case "plan clean empty" `Quick test_plan_clean_is_empty;
    Alcotest.test_case "plan crashable subset" `Quick test_plan_crashable_subset;
    Alcotest.test_case "injector drops" `Quick test_injector_drops_messages;
    Alcotest.test_case "injector duplicates" `Quick
      test_injector_duplicates_messages;
    Alcotest.test_case "injector partition" `Quick
      test_injector_partition_parks_then_heals;
    Alcotest.test_case "injector crash cycle" `Quick
      test_injector_crash_restart_cycle;
    Alcotest.test_case "injector stop restores" `Quick
      test_injector_stop_restores;
    Alcotest.test_case "injector traces" `Quick test_injector_traces_faults;
    Alcotest.test_case "recovery round trip" `Quick test_recovery_round_trip;
    Alcotest.test_case "recovery detects gaps" `Quick
      test_recovery_detects_unjournaled_writes;
    Alcotest.test_case "recovery covers all paths" `Quick
      test_recovery_journals_all_mutation_paths;
    Alcotest.test_case "fuzz deterministic" `Quick test_fuzz_case_deterministic;
    Alcotest.test_case "fuzz invariants spot" `Quick
      test_fuzz_invariants_hold_spot;
    Alcotest.test_case "fuzz sabotage caught" `Quick test_fuzz_sabotage_caught;
    Alcotest.test_case "fuzz names round trip" `Quick
      test_fuzz_names_round_trip;
    Alcotest.test_case "parallel faults deterministic" `Slow
      test_par_eager_faults_deterministic;
    Alcotest.test_case "fuzz ignores sim-domains budget" `Slow
      test_fuzz_ignores_sim_domains;
  ]
