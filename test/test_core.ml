(* Acceptance, Commutative, Tentative, Mobile_node, and Two_tier tests. *)

module Acceptance = Dangers_core.Acceptance
module Commutative = Dangers_core.Commutative
module Tentative = Dangers_core.Tentative
module Mobile_node = Dangers_core.Mobile_node
module Two_tier = Dangers_core.Two_tier

module Params = Dangers_analytic.Params
module Profile = Dangers_workload.Profile
module Op = Dangers_txn.Op
module Oid = Dangers_storage.Oid
module Fstore = Dangers_storage.Store.Fstore
module Timestamp = Dangers_storage.Timestamp
module Engine = Dangers_sim.Engine
module Clock = Dangers_runtime.Clock
module Metrics = Dangers_sim.Metrics
module Connectivity = Dangers_net.Connectivity
module Rng = Dangers_util.Rng
module Common = Dangers_replication.Common
module Repl_stats = Dangers_replication.Repl_stats

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

let o n = Oid.of_int n

(* --- Acceptance --- *)

let outcome oid tentative base = { Acceptance.oid = o oid; tentative; base }

let test_acceptance_criteria () =
  let ok t outcomes = checkb (Acceptance.name t) true (Acceptance.accept t outcomes) in
  let no t outcomes = checkb (Acceptance.name t) false (Acceptance.accept t outcomes) in
  ok Acceptance.Always [ outcome 0 1. 99. ];
  ok Acceptance.Exact_match [ outcome 0 5. 5. ];
  no Acceptance.Exact_match [ outcome 0 5. 5.1 ];
  ok (Acceptance.Within 0.5) [ outcome 0 5. 5.4 ];
  no (Acceptance.Within 0.5) [ outcome 0 5. 6. ];
  ok Acceptance.Non_negative [ outcome 0 (-3.) 0. ];
  no Acceptance.Non_negative [ outcome 0 3. (-0.01) ];
  ok Acceptance.At_most_tentative [ outcome 0 10. 9. ];
  no Acceptance.At_most_tentative [ outcome 0 10. 11. ];
  ok (Acceptance.All [ Acceptance.Non_negative; Acceptance.Within 1. ])
    [ outcome 0 5. 5.5 ];
  no (Acceptance.All [ Acceptance.Non_negative; Acceptance.Within 1. ])
    [ outcome 0 5. (-0.5) ];
  ok (Acceptance.Custom ("even", fun _ -> true)) [];
  no (Acceptance.Custom ("never", fun _ -> false)) [ outcome 0 1. 1. ]

let contains_substring haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

let test_acceptance_explain () =
  (match Acceptance.explain Acceptance.Non_negative [ outcome 3 5. (-2.) ] with
  | Some msg ->
      checkb "mentions the object" true (contains_substring msg "o3");
      checkb "mentions the criterion" true (contains_substring msg "non-negative")
  | None -> Alcotest.fail "must explain the failure");
  checkb "accepted yields no diagnostic" true
    (Acceptance.explain Acceptance.Always [ outcome 0 1. 2. ] = None)

(* --- Commutative --- *)

let test_commutative_constructors () =
  (match Commutative.transfer ~from_:(o 0) ~to_:(o 1) 25. with
  | [ Op.Increment (a, d1); Op.Increment (b, d2) ] ->
      checki "debit account" 0 (Oid.to_int a);
      checki "credit account" 1 (Oid.to_int b);
      checkf "debit" (-25.) d1;
      checkf "credit" 25. d2
  | _ -> Alcotest.fail "transfer shape");
  Alcotest.check_raises "same account"
    (Invalid_argument "Commutative.transfer: same account") (fun () ->
      ignore (Commutative.transfer ~from_:(o 1) ~to_:(o 1) 5.));
  Alcotest.check_raises "negative deposit"
    (Invalid_argument "Commutative.deposit: negative amount") (fun () ->
      ignore (Commutative.deposit (o 0) (-5.)))

let test_commutative_checks () =
  let txns =
    [
      Commutative.deposit (o 0) 10.;
      Commutative.debit (o 0) 4.;
      Commutative.transfer ~from_:(o 0) ~to_:(o 1) 3.;
    ]
  in
  checkb "pairwise commute" true (Commutative.pairwise_commute txns);
  checkb "converges empirically" true
    (Commutative.converges ~rng:(Rng.create ~seed:1) ~db_size:2 ~init:100. txns);
  let with_assign = [ Op.Assign (o 0, 5.) ] :: txns in
  checkb "assign breaks commuting" false (Commutative.pairwise_commute with_assign)

let commutative_convergence_prop =
  QCheck.Test.make ~name:"commutative: increment txns converge in any order"
    ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 10)
              (pair (int_range 0 4) (float_range (-20.) 20.)))
    (fun specs ->
      let txns = List.map (fun (i, d) -> [ Op.Increment (o i, d) ]) specs in
      Commutative.converges ~rng:(Rng.create ~seed:7) ~db_size:5 ~init:0. txns)

(* --- Tentative --- *)

let test_tentative_record () =
  let txn =
    Tentative.make ~seq:3 ~origin:5
      ~ops:[ Op.Increment (o 2, 1.); Op.Read (o 4); Op.Increment (o 2, 2.) ]
      ~acceptance:Acceptance.Always
      ~tentative_results:[ (o 2, 3.) ]
      ~committed_at:1.5
  in
  Alcotest.check (Alcotest.list Alcotest.int) "written oids dedup" [ 2 ]
    (List.map Oid.to_int (Tentative.written_oids txn));
  let other =
    Tentative.make ~seq:4 ~origin:5 ~ops:[ Op.Increment (o 2, 5.) ]
      ~acceptance:Acceptance.Always ~tentative_results:[] ~committed_at:2.
  in
  checkb "increments commute" true (Tentative.commutes_with txn other)

(* --- Mobile node --- *)

let test_mobile_node_dual_versions () =
  let m = Mobile_node.create ~node:2 ~db_size:4 ~initial_value:100. in
  let txn =
    Mobile_node.run_tentative m ~ops:[ Op.Increment (o 1, -30.) ]
      ~acceptance:Acceptance.Non_negative ~now:1.0
  in
  checkf "tentative version updated" 70.
    (Fstore.read (Mobile_node.tentative_store m) (o 1));
  checkf "master version untouched" 100.
    (Fstore.read (Mobile_node.master_store m) (o 1));
  checkb "node shows divergence" true (Mobile_node.diverged m);
  checki "queued" 1 (Mobile_node.pending_count m);
  Alcotest.check (Alcotest.list (Alcotest.pair Alcotest.int (Alcotest.float 1e-9)))
    "results recorded" [ (1, 70.) ]
    (List.map (fun (oid, v) -> (Oid.to_int oid, v)) txn.Tentative.tentative_results)

let test_mobile_node_refresh_discards () =
  let m = Mobile_node.create ~node:2 ~db_size:2 ~initial_value:0. in
  ignore
    (Mobile_node.run_tentative m ~ops:[ Op.Assign (o 0, 42.) ]
       ~acceptance:Acceptance.Always ~now:0.);
  let base = Fstore.create ~db_size:2 ~init:(fun _ -> 7.) in
  Fstore.write base (o 0) 9. { Timestamp.counter = 3; node = 0 };
  Mobile_node.refresh_from m base;
  checkf "tentative discarded" 9. (Fstore.read (Mobile_node.tentative_store m) (o 0));
  checkf "master refreshed" 9. (Fstore.read (Mobile_node.master_store m) (o 0));
  checkb "no divergence" false (Mobile_node.diverged m);
  checki "pending kept for replay" 1 (Mobile_node.pending_count m)

let test_mobile_node_queue_order () =
  let m = Mobile_node.create ~node:1 ~db_size:2 ~initial_value:0. in
  let t1 = Mobile_node.run_tentative m ~ops:[ Op.Increment (o 0, 1.) ]
      ~acceptance:Acceptance.Always ~now:0. in
  let t2 = Mobile_node.run_tentative m ~ops:[ Op.Increment (o 0, 2.) ]
      ~acceptance:Acceptance.Always ~now:1. in
  (match Mobile_node.take_pending m with
  | [ a; b ] ->
      checki "commit order" t1.Tentative.seq a.Tentative.seq;
      checki "commit order" t2.Tentative.seq b.Tentative.seq
  | _ -> Alcotest.fail "two pending");
  Mobile_node.requeue_front m [ t2 ];
  let t3 = Mobile_node.run_tentative m ~ops:[ Op.Increment (o 0, 3.) ]
      ~acceptance:Acceptance.Always ~now:2. in
  (match Mobile_node.pending m with
  | [ a; b ] ->
      checki "requeued first" t2.Tentative.seq a.Tentative.seq;
      checki "new one after" t3.Tentative.seq b.Tentative.seq
  | _ -> Alcotest.fail "two pending after requeue")

(* --- Two-tier --- *)

let tt_params =
  {
    Params.default with
    db_size = 60;
    nodes = 4; (* 2 base + 2 mobile *)
    tps = 3.;
    actions = 2;
    time_between_disconnects = 20.;
    disconnected_time = 40.;
  }

let test_two_tier_connected_behaves_like_lazy_master () =
  let spec = Connectivity.base_node in
  let sys = Two_tier.create ~mobility:spec ~base_nodes:2 tt_params ~seed:1 in
  Two_tier.start sys;
  Common.measure (Two_tier.base sys) ~warmup:2. ~span:10.;
  Two_tier.stop_load sys;
  Two_tier.quiesce_and_sync sys;
  let s = Two_tier.summary sys in
  checkb "base commits" true (s.Repl_stats.commits > 50);
  checki "no tentative work when connected" 0
    (Metrics.total_count (Two_tier.base sys).Common.metrics "tentative_commits");
  checkb "converged" true (Two_tier.converged sys)

let test_two_tier_tentative_replay_commutative () =
  let profile = Profile.create ~update_kind:Profile.Increments ~actions:2 () in
  let sys =
    Two_tier.create ~profile ~initial_value:1000. ~base_nodes:2 tt_params ~seed:2
  in
  Two_tier.start sys;
  Clock.run_for (Two_tier.base sys).Common.clock 120.;
  Two_tier.quiesce_and_sync sys;
  let metrics = (Two_tier.base sys).Common.metrics in
  checkb "tentative transactions ran" true
    (Metrics.total_count metrics "tentative_commits" > 10);
  checkb "replays accepted" true (Two_tier.tentative_accepted sys > 10);
  checki "commutative updates: no rejects" 0 (Two_tier.tentative_rejected sys);
  checkb "no system delusion: converged" true (Two_tier.converged sys)

(* Build a 1-base + 1-mobile system whose mobile is disconnected (for a very
   long time) once the engine has run past the connected phase. Generators
   are never started; the test drives transactions by hand. *)
let disconnected_pair ?initial_value ?acceptance ~seed params =
  let params = { params with Params.nodes = 2 } in
  let sys =
    Two_tier.create ?initial_value ?acceptance
      ~mobility:(Connectivity.day_cycle ~connected:5. ~disconnected:1_000_000.)
      ~base_nodes:1 params ~seed
  in
  (* Stagger offset < one cycle, so by this time the mobile is down. *)
  Clock.run (Two_tier.base sys).Common.clock ~until:1_000_010.;
  sys

let test_two_tier_rejection_with_acceptance () =
  (* Mobile tentatively increments an object; the base assigns it meanwhile;
     Exact_match must reject the replay and keep the base consistent. *)
  let sys =
    disconnected_pair ~acceptance:Acceptance.Exact_match ~seed:3 tt_params
  in
  let clock = (Two_tier.base sys).Common.clock in
  Two_tier.submit sys ~node:1 [ Op.Increment (o 5, 10.) ];
  checki "queued as tentative" 1
    (Metrics.total_count (Two_tier.base sys).Common.metrics "tentative_commits");
  (* The base moves the object while the mobile is away; the base
     transaction holds the lock before the reconnect replay can run. *)
  Two_tier.run_base_transaction sys ~ops:[ Op.Assign (o 5, 999.) ]
    ~on_done:(fun _ -> ()) ();
  ignore clock;
  Two_tier.quiesce_and_sync sys;
  checki "replay rejected" 1 (Two_tier.tentative_rejected sys);
  checki "nothing accepted" 0 (Two_tier.tentative_accepted sys);
  (match Two_tier.rejection_log sys with
  | [ (txn, reason) ] ->
      checki "the right transaction" 0 txn.Tentative.seq;
      checkb "diagnostic mentions drift" true
        (contains_substring reason "differs");
      checkb "diagnostic names criterion" true
        (contains_substring reason "exact-match")
  | _ -> Alcotest.fail "exactly one rejection expected");
  (* The rejected transaction left no trace on the base. *)
  checkf "base kept its value" 999.
    (Fstore.read (Two_tier.base sys).Common.stores.(0) (o 5));
  checkb "no system delusion" true (Two_tier.converged sys)

let test_two_tier_overdraft_rejected () =
  (* The checkbook story: two debits against one balance; the second must
     bounce at the bank. *)
  let params = { tt_params with db_size = 4 } in
  let sys =
    disconnected_pair ~initial_value:1000. ~acceptance:Acceptance.Non_negative
      ~seed:4 params
  in
  (* Mobile is now disconnected; write two tentative debits of 800. *)
  let account = o 1 in
  Two_tier.submit sys ~node:1 (Commutative.debit account 800.);
  Two_tier.submit sys ~node:1 (Commutative.debit account 800.);
  checki "two tentative" 2
    (Metrics.total_count (Two_tier.base sys).Common.metrics "tentative_commits");
  Two_tier.quiesce_and_sync sys;
  checki "first debit cleared" 1 (Two_tier.tentative_accepted sys);
  checki "second bounced" 1 (Two_tier.tentative_rejected sys);
  checkf "balance reflects one debit" 200.
    (Fstore.read (Two_tier.base sys).Common.stores.(0) account);
  checkb "converged" true (Two_tier.converged sys)

let test_two_tier_scope_rule () =
  let params = { tt_params with nodes = 3; db_size = 30 } in
  let sys =
    Two_tier.create ~base_nodes:1 ~mobile_owned_per_node:5
      ~mobility:Connectivity.base_node params ~seed:5
  in
  (* Objects 20-24 belong to mobile node 1, 25-29 to mobile node 2. *)
  checki "base owns the head" 0 (Two_tier.owner_of sys (o 3));
  checki "mobile 1 block" 1 (Two_tier.owner_of sys (o 22));
  checki "mobile 2 block" 2 (Two_tier.owner_of sys (o 27));
  (* A transaction at node 1 touching node 2's object violates scope. *)
  Two_tier.submit sys ~node:1 [ Op.Increment (o 27, 1.) ];
  checki "scope violation counted" 1
    (Metrics.total_count (Two_tier.base sys).Common.metrics "scope_violations");
  (* Own-mastered and base-mastered are fine. *)
  Two_tier.submit sys ~node:1 [ Op.Increment (o 22, 1.); Op.Increment (o 3, 1.) ];
  Common.drain (Two_tier.base sys);
  checki "no extra violation" 1
    (Metrics.total_count (Two_tier.base sys).Common.metrics "scope_violations")

let test_two_tier_mobile_owned_sync () =
  (* The mobile masters a block of objects (step 2 of the reconnect
     protocol): tentative updates to them replay at the base, land on the
     mobile's own master copies, and propagate to base replicas. *)
  let params = { tt_params with nodes = 2; db_size = 10 } in
  let sys =
    Two_tier.create ~initial_value:0. ~base_nodes:1 ~mobile_owned_per_node:3
      ~mobility:(Connectivity.day_cycle ~connected:5. ~disconnected:1_000_000.)
      params ~seed:6
  in
  Clock.run (Two_tier.base sys).Common.clock ~until:1_000_010.;
  (* Objects 7,8,9 are mastered at the mobile (node 1). *)
  checki "tail owned by mobile" 1 (Two_tier.owner_of sys (o 8));
  Two_tier.submit sys ~node:1 [ Op.Increment (o 8, 5.) ]; (* own object *)
  Two_tier.submit sys ~node:1 [ Op.Increment (o 2, 3.) ]; (* base object *)
  Two_tier.quiesce_and_sync sys;
  checki "both replays accepted" 2 (Two_tier.tentative_accepted sys);
  let base_store = (Two_tier.base sys).Common.stores.(0) in
  checkf "mobile-mastered update reached the base replica" 5.
    (Fstore.read base_store (o 8));
  checkf "base-mastered update applied" 3. (Fstore.read base_store (o 2));
  let mobile = Two_tier.mobile sys ~node:1 in
  checkf "mobile's master copy current" 5.
    (Fstore.read (Dangers_core.Mobile_node.master_store mobile) (o 8));
  checkb "converged" true (Two_tier.converged sys);
  checkb "serializable history" true (Two_tier.base_history_serializable sys)

let test_two_tier_determinism () =
  let run () =
    let profile = Profile.create ~update_kind:Profile.Increments ~actions:2 () in
    let sys = Two_tier.create ~profile ~base_nodes:2 tt_params ~seed:42 in
    Two_tier.start sys;
    Clock.run_for (Two_tier.base sys).Common.clock 60.;
    Two_tier.quiesce_and_sync sys;
    let s = Two_tier.summary sys in
    ( s.Repl_stats.commits,
      Two_tier.tentative_accepted sys,
      Two_tier.tentative_rejected sys )
  in
  checkb "same seed, same outcome" true (run () = run ())

let suite =
  [
    Alcotest.test_case "acceptance criteria" `Quick test_acceptance_criteria;
    Alcotest.test_case "acceptance explain" `Quick test_acceptance_explain;
    Alcotest.test_case "commutative constructors" `Quick test_commutative_constructors;
    Alcotest.test_case "commutative checks" `Quick test_commutative_checks;
    QCheck_alcotest.to_alcotest commutative_convergence_prop;
    Alcotest.test_case "tentative record" `Quick test_tentative_record;
    Alcotest.test_case "mobile dual versions" `Quick test_mobile_node_dual_versions;
    Alcotest.test_case "mobile refresh discards" `Quick test_mobile_node_refresh_discards;
    Alcotest.test_case "mobile queue order" `Quick test_mobile_node_queue_order;
    Alcotest.test_case "two-tier connected = lazy master" `Quick
      test_two_tier_connected_behaves_like_lazy_master;
    Alcotest.test_case "two-tier commutative replay" `Quick
      test_two_tier_tentative_replay_commutative;
    Alcotest.test_case "two-tier rejection" `Quick test_two_tier_rejection_with_acceptance;
    Alcotest.test_case "two-tier overdraft rejected" `Quick test_two_tier_overdraft_rejected;
    Alcotest.test_case "two-tier scope rule" `Quick test_two_tier_scope_rule;
    Alcotest.test_case "two-tier mobile-owned sync" `Quick
      test_two_tier_mobile_owned_sync;
    Alcotest.test_case "two-tier determinism" `Quick test_two_tier_determinism;
  ]
