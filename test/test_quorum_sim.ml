(* Quorum_sim: eager availability under failures. *)

module Params = Dangers_analytic.Params
module Quorum = Dangers_replication.Quorum
module Quorum_sim = Dangers_replication.Quorum_sim
module Common = Dangers_replication.Common
module Engine = Dangers_sim.Engine
module Clock = Dangers_runtime.Clock

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let params = { Params.default with nodes = 3; db_size = 100; tps = 2.; actions = 2 }

let make ?(uptime = 0.9) ~seed () =
  Quorum_sim.create ~quorum:(Quorum.majority ~n:3) ~uptime ~mean_downtime:10.
    params ~seed

let test_validation () =
  Alcotest.check_raises "uptime out of range"
    (Invalid_argument "Quorum_sim.create: uptime must be in (0,1)") (fun () ->
      ignore
        (Quorum_sim.create ~quorum:(Quorum.majority ~n:3) ~uptime:1.5
           ~mean_downtime:10. params ~seed:1));
  Alcotest.check_raises "replica mismatch"
    (Invalid_argument "Quorum_sim.create: quorum replica count mismatch")
    (fun () ->
      ignore
        (Quorum_sim.create ~quorum:(Quorum.majority ~n:5) ~uptime:0.9
           ~mean_downtime:10. params ~seed:1))

let test_all_up_always_available () =
  (* Practically-always-up nodes: every update should find a quorum. *)
  let sim =
    Quorum_sim.create ~quorum:(Quorum.majority ~n:3) ~uptime:0.999999
      ~mean_downtime:0.001 params ~seed:2
  in
  Quorum_sim.start sim;
  Clock.run_for (Quorum_sim.base sim).Common.clock 100.;
  Quorum_sim.stop_load sim;
  checkb "committed plenty" true (Quorum_sim.committed sim > 300);
  checki "never unavailable" 0 (Quorum_sim.unavailable sim);
  checkb "consistent" true (Quorum_sim.up_replicas_consistent sim)

let test_failures_cause_unavailability_and_recovery () =
  let sim = make ~uptime:0.7 ~seed:3 () in
  Quorum_sim.start sim;
  Clock.run_for (Quorum_sim.base sim).Common.clock 2_000.;
  Quorum_sim.stop_load sim;
  checkb "some updates refused" true (Quorum_sim.unavailable sim > 0);
  checkb "most still commit" true
    (Quorum_sim.availability sim > 0.5 && Quorum_sim.availability sim < 1.);
  checkb "recoveries happened" true (Quorum_sim.catch_ups sim > 0);
  checkb "up replicas consistent at the end" true
    (Quorum_sim.up_replicas_consistent sim)

let test_availability_matches_closed_form () =
  let sim = make ~uptime:0.9 ~seed:4 () in
  Quorum_sim.start sim;
  Clock.run_for (Quorum_sim.base sim).Common.clock 20_000.;
  Quorum_sim.stop_load sim;
  let predicted = Quorum.write_availability (Quorum.majority ~n:3) ~p_up:0.9 in
  checkb "within 3% of the binomial prediction" true
    (Float.abs (Quorum_sim.availability sim -. predicted) < 0.03)

let suite =
  [
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "all up, always available" `Quick test_all_up_always_available;
    Alcotest.test_case "failures and recovery" `Quick
      test_failures_cause_unavailability_and_recovery;
    Alcotest.test_case "availability matches closed form" `Slow
      test_availability_matches_closed_form;
  ]
