(* Micro-benchmark harness tests: statistics, the BENCH_micro.json schema
   round-trip, and the regression comparator's verdicts. *)

module Harness = Dangers_microbench.Harness
module Bench_file = Dangers_microbench.Bench_file
module Compare = Dangers_microbench.Compare
module Export = Dangers_runner.Export

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

let test_stats_of_samples () =
  let s =
    Harness.of_samples ~name:"s" ~warmup:2 ~runs:3
      [| 30.; 10.; 20.; 40.; 50. |]
  in
  checkf "mean" 30. s.Harness.mean;
  checkf "p50" 30. s.Harness.p50;
  checkf "min" 10. s.Harness.min;
  checkf "max" 50. s.Harness.max;
  (* sample stddev of 10..50 step 10 *)
  checkf "stddev" (sqrt 250.) s.Harness.stddev;
  (* p99 sits between the two largest samples: rank 3.96 of [0..4] *)
  checkf "p99" 49.6 s.Harness.p99;
  checki "samples recorded" 5 s.Harness.s_samples

let test_percentile_interpolation () =
  let xs = [| 0.; 100. |] in
  checkf "p0" 0. (Harness.percentile xs 0.);
  checkf "p50 interpolates" 50. (Harness.percentile xs 50.);
  checkf "p100" 100. (Harness.percentile xs 100.);
  checkf "single sample" 7. (Harness.percentile [| 7. |] 99.)

let test_harness_runs () =
  let hits = ref 0 in
  let stats =
    Harness.run (Harness.bench ~warmup:1 ~samples:4 ~runs:2 "spin" (fun () -> incr hits))
  in
  (* warmup batch + 4 sample batches, 2 runs each *)
  checki "all batches executed" 10 !hits;
  checkb "timings non-negative" true (stats.Harness.min >= 0.);
  checkb "min <= mean <= max" true
    (stats.Harness.min <= stats.Harness.mean
    && stats.Harness.mean <= stats.Harness.max)

let sample_stats name mean =
  {
    Harness.s_name = name;
    s_warmup = 3;
    s_samples = 10;
    s_runs = 5;
    mean;
    stddev = mean /. 100.;
    p50 = mean;
    p99 = mean *. 1.1;
    min = mean *. 0.9;
    max = mean *. 1.2;
  }

let test_schema_round_trip () =
  let file =
    {
      Bench_file.host_cores = 4;
      quick = false;
      benchmarks = [ sample_stats "a/b" 123.456; sample_stats "c" 1e9 ];
    }
  in
  let json = Export.json_to_string (Bench_file.to_json file) in
  let back = Bench_file.of_json (Export.json_of_string json) in
  checkb "round-trips exactly" true (back = file);
  Alcotest.check_raises "wrong schema rejected"
    (Export.Parse_error "bench-micro: unsupported schema nope") (fun () ->
      ignore
        (Bench_file.of_json
           (Export.Obj [ ("schema", Export.Str "nope") ])))

let compare_files old_means new_means =
  let file benchmarks =
    { Bench_file.host_cores = 1; quick = true;
      benchmarks = List.map (fun (n, m) -> sample_stats n m) benchmarks }
  in
  Compare.diff ~threshold:0.20 (file old_means) (file new_means)

let test_compare_flags_regression () =
  (* +25% mean regresses past a 20% threshold; +10% does not. *)
  let report =
    compare_files
      [ ("lock", 100.); ("engine", 200.); ("e2e", 1000.) ]
      [ ("lock", 125.); ("engine", 210.); ("e2e", 700.) ]
  in
  checki "one regression" 1 (List.length report.Compare.regressions);
  checkb "names the regressed bench" true
    ((List.hd report.Compare.regressions).Compare.name = "lock");
  checki "one improvement" 1 (List.length report.Compare.improvements);
  checki "one stable" 1 (List.length report.Compare.stable);
  checkb "overall verdict fails" false (Compare.ok report)

let test_compare_ok_within_threshold () =
  let report =
    compare_files
      [ ("lock", 100.); ("engine", 200.) ]
      [ ("lock", 110.); ("engine", 190.) ]
  in
  checkb "10% drift passes at 20%" true (Compare.ok report);
  checki "no regressions" 0 (List.length report.Compare.regressions)

let test_compare_missing_bench_tolerated () =
  let before = Dangers_obs.Warnings.count ~key:"bench.compare.missing" in
  let report = compare_files [ ("lock", 100.); ("gone", 50.) ] [ ("lock", 100.) ] in
  checkb "lost coverage no longer fails the check" true (Compare.ok report);
  Alcotest.check (Alcotest.list Alcotest.string) "names the lost bench"
    [ "gone" ] report.Compare.only_old;
  checki "registers a warn-once for the lost bench" (before + 1)
    (Dangers_obs.Warnings.count ~key:"bench.compare.missing");
  let report2 = compare_files [ ("lock", 100.) ] [ ("lock", 100.); ("extra", 9.) ] in
  checkb "new benches are fine" true (Compare.ok report2);
  checki "new-only benches do not warn" (before + 1)
    (Dangers_obs.Warnings.count ~key:"bench.compare.missing");
  (* A regression still fails even when benches are also missing. *)
  let report3 =
    compare_files [ ("lock", 100.); ("gone", 50.) ] [ ("lock", 150.) ]
  in
  checkb "regressions still fail" false (Compare.ok report3)

let suite =
  [
    Alcotest.test_case "stats of samples" `Quick test_stats_of_samples;
    Alcotest.test_case "percentile interpolation" `Quick
      test_percentile_interpolation;
    Alcotest.test_case "harness runs warmup and samples" `Quick
      test_harness_runs;
    Alcotest.test_case "schema round trip" `Quick test_schema_round_trip;
    Alcotest.test_case "compare flags 25% regression" `Quick
      test_compare_flags_regression;
    Alcotest.test_case "compare passes 10% drift" `Quick
      test_compare_ok_within_threshold;
    Alcotest.test_case "compare tolerates lost bench" `Quick
      test_compare_missing_bench_tolerated;
  ]
