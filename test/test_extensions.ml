(* Tests for the post-core extensions: read transactions and S-lock
   sharing, derived writes (Assign_from), eager message-delay charging,
   hotspot profiles, and the Datacycle master assignment. *)

module Params = Dangers_analytic.Params
module Profile = Dangers_workload.Profile
module Op = Dangers_txn.Op
module Oid = Dangers_storage.Oid
module Txn_id = Dangers_txn.Txn_id
module Executor = Dangers_txn.Executor
module Engine = Dangers_sim.Engine
module Clock = Dangers_runtime.Clock
module Metrics = Dangers_sim.Metrics
module Fstore = Dangers_storage.Store.Fstore
module Lock_manager = Dangers_lock.Lock_manager
module Delay = Dangers_net.Delay
module Rng = Dangers_util.Rng
module Stats = Dangers_util.Stats

module Common = Dangers_replication.Common
module Repl_stats = Dangers_replication.Repl_stats
module Eager_group = Dangers_replication.Eager_group
module Eager_impl = Dangers_replication.Eager_impl
module Lazy_master = Dangers_replication.Lazy_master

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

let o n = Oid.of_int n

(* --- Assign_from (derived writes) --- *)

let test_assign_from_apply () =
  let op = Op.Assign_from { target = o 0; source = o 5; offset = -3. } in
  let read oid = if Oid.to_int oid = 5 then 100. else 0. in
  checkf "derived value" 97. (Op.apply ~read ~current:1. op);
  checki "writes the target" 0 (Oid.to_int (Op.oid op));
  checkb "is an update" true (Op.is_update op);
  Alcotest.check_raises "requires read"
    (Invalid_argument "Op.apply: derived op needs ~read") (fun () ->
      ignore (Op.apply ~current:1. op))

let test_assign_from_commutes () =
  let quote = Op.Assign_from { target = o 0; source = o 5; offset = 0. } in
  checkb "conflicts with writes to its source" false
    (Op.commutes quote (Op.Increment (o 5, 1.)));
  checkb "conflicts with writes to its target" false
    (Op.commutes quote (Op.Increment (o 0, 1.)));
  checkb "independent objects commute" true
    (Op.commutes quote (Op.Increment (o 9, 1.)));
  checkb "reads commute" true (Op.commutes quote (Op.Read (o 5)))

(* --- Reads in profiles --- *)

let test_profile_reads () =
  let profile = Profile.create ~reads:3 ~actions:2 () in
  let rng = Rng.create ~seed:1 in
  for _ = 1 to 50 do
    let ops = Profile.generate profile rng ~db_size:30 in
    checki "five ops" 5 (List.length ops);
    let reads = List.filter (fun op -> not (Op.is_update op)) ops in
    checki "three reads" 3 (List.length reads);
    let oids = List.map (fun op -> Oid.to_int (Op.oid op)) ops in
    checki "all distinct" 5 (List.length (List.sort_uniq Int.compare oids))
  done

(* --- S-lock sharing in the executor --- *)

let test_readers_share () =
  let engine = Engine.create () in
  let locks = Lock_manager.create () in
  let executor = Executor.create ~clock:(Clock.of_engine engine) ~locks ~action_time:0.1 () in
  let gen = Txn_id.Gen.create () in
  let done_at = ref [] in
  let submit () =
    Executor.run executor ~owner:(Txn_id.Gen.next gen)
      ~steps:[ Executor.read_step ~resource:7 ]
      ~on_commit:(fun () -> done_at := Engine.now engine :: !done_at)
      ~on_deadlock:(fun ~cycle:_ -> Alcotest.fail "readers cannot deadlock")
  in
  submit ();
  submit ();
  Engine.run engine;
  (* Both readers run concurrently: both finish at t = 0.1. *)
  Alcotest.check
    (Alcotest.list (Alcotest.float 1e-9))
    "parallel readers" [ 0.1; 0.1 ] !done_at

let test_writer_waits_for_reader () =
  let engine = Engine.create () in
  let locks = Lock_manager.create () in
  let executor = Executor.create ~clock:(Clock.of_engine engine) ~locks ~action_time:0.1 () in
  let gen = Txn_id.Gen.create () in
  let times = ref [] in
  let submit step tag =
    Executor.run executor ~owner:(Txn_id.Gen.next gen) ~steps:[ step ]
      ~on_commit:(fun () -> times := (tag, Engine.now engine) :: !times)
      ~on_deadlock:(fun ~cycle:_ -> Alcotest.fail "deadlock")
  in
  submit (Executor.read_step ~resource:1) "r";
  submit (Executor.update_step ~resource:1) "w";
  Engine.run engine;
  (match List.rev !times with
  | [ ("r", tr); ("w", tw) ] ->
      checkf "reader first" 0.1 tr;
      checkf "writer after reader" 0.2 tw
  | _ -> Alcotest.fail "both must finish")

(* --- Eager: reads stay local --- *)

let test_eager_read_txn_is_local_and_silent () =
  let params = { Params.default with nodes = 3; db_size = 20; tps = 0.001 } in
  let sys = Eager_group.create ~initial_value:5. params ~seed:1 in
  let base = Eager_group.base sys in
  let snapshot = Fstore.copy base.Common.stores.(1) in
  (* A transaction of two reads and one remote-ish read takes only local
     time and changes nothing anywhere. *)
  Eager_group.submit sys ~node:0 [ Op.Read (o 1); Op.Read (o 2) ];
  Common.drain base;
  checkb "no store changed" true (Fstore.content_equal snapshot base.Common.stores.(1));
  checkf "read txn duration = reads x action_time" 0.02
    (Stats.mean (Metrics.sample_stats base.Common.metrics Repl_stats.duration_sample))

(* --- Eager: message delay stretches remote steps --- *)

let test_eager_delay_charges_remote_steps () =
  let params = { Params.default with nodes = 3; db_size = 20; tps = 0.001; actions = 2 } in
  let duration delay =
    let sys = Eager_impl.create ~delay Eager_impl.Group params ~seed:2 in
    Eager_impl.submit sys ~node:0 [ Op.Assign (o 1, 1.); Op.Assign (o 2, 2.) ];
    Common.drain (Eager_impl.base sys);
    Stats.mean
      (Metrics.sample_stats (Eager_impl.base sys).Common.metrics
         Repl_stats.duration_sample)
  in
  (* 2 updates x 3 nodes x 10ms. *)
  checkf "zero delay baseline" 0.06 (duration Delay.Zero);
  (* 4 remote steps pick up 50ms each. *)
  checkf "constant delay added per remote step" (0.06 +. (4. *. 0.05))
    (duration (Delay.Constant 0.05))

(* --- Lazy master: Datacycle assignment --- *)

let test_datacycle_single_master () =
  let params = { Params.default with nodes = 3; db_size = 30; tps = 0.001 } in
  let sys =
    Lazy_master.create ~master_assignment:(Lazy_master.Datacycle 1) params ~seed:3
  in
  for i = 0 to 29 do
    checki "all objects mastered at node 1" 1 (Lazy_master.master_of sys (o i))
  done;
  Lazy_master.submit sys ~node:0 [ Op.Assign (o 4, 9.) ];
  Common.drain (Lazy_master.base sys);
  Array.iter
    (fun store -> checkf "replicated from the single master" 9. (Fstore.read store (o 4)))
    (Lazy_master.base sys).Common.stores;
  Alcotest.check_raises "master out of range"
    (Invalid_argument "Lazy_master.create: Datacycle master out of range")
    (fun () ->
      ignore
        (Lazy_master.create ~master_assignment:(Lazy_master.Datacycle 9) params
           ~seed:4))

(* --- Two-tier replays derived writes against current data --- *)

let test_two_tier_derived_write_drifts () =
  let module Two_tier = Dangers_core.Two_tier in
  let module Acceptance = Dangers_core.Acceptance in
  let module Connectivity = Dangers_net.Connectivity in
  let params = { Params.default with nodes = 2; db_size = 10; tps = 1. } in
  let sys =
    Two_tier.create ~initial_value:100. ~acceptance:Acceptance.At_most_tentative
      ~mobility:(Connectivity.day_cycle ~connected:5. ~disconnected:1_000_000.)
      ~base_nodes:1 params ~seed:5
  in
  Clock.run (Two_tier.base sys).Common.clock ~until:1_000_010.;
  (* Quote: o0 := o5 - 10, evaluated tentatively against o5 = 100. *)
  Two_tier.submit sys ~node:1
    [ Op.Assign_from { target = o 0; source = o 5; offset = -10. } ];
  (* The catalog moves to 150 at the base. *)
  Two_tier.run_base_transaction sys ~ops:[ Op.Assign (o 5, 150.) ]
    ~on_done:(fun _ -> ()) ();
  Two_tier.quiesce_and_sync sys;
  checki "re-execution drifted above the quote: rejected" 1
    (Two_tier.tentative_rejected sys);
  checkf "target untouched on the base" 100.
    (Fstore.read (Two_tier.base sys).Common.stores.(0) (o 0));
  checkb "still converged" true (Two_tier.converged sys)

let suite =
  [
    Alcotest.test_case "assign_from apply" `Quick test_assign_from_apply;
    Alcotest.test_case "assign_from commutes" `Quick test_assign_from_commutes;
    Alcotest.test_case "profile reads" `Quick test_profile_reads;
    Alcotest.test_case "readers share S locks" `Quick test_readers_share;
    Alcotest.test_case "writer waits for reader" `Quick test_writer_waits_for_reader;
    Alcotest.test_case "eager reads local and silent" `Quick
      test_eager_read_txn_is_local_and_silent;
    Alcotest.test_case "eager delay charges remote steps" `Quick
      test_eager_delay_charges_remote_steps;
    Alcotest.test_case "datacycle single master" `Quick test_datacycle_single_master;
    Alcotest.test_case "two-tier derived write drifts" `Quick
      test_two_tier_derived_write_drifts;
  ]
