(* Paths the main suites skim over: generic store instances, exponential
   connectivity, delayed two-tier, custom rules and criteria, summary
   pretty-printers. *)

module Oid = Dangers_storage.Oid
module Timestamp = Dangers_storage.Timestamp
module Store = Dangers_storage.Store
module Engine = Dangers_sim.Engine
module Clock = Dangers_runtime.Clock
module Metrics = Dangers_sim.Metrics
module Connectivity = Dangers_net.Connectivity
module Delay = Dangers_net.Delay
module Params = Dangers_analytic.Params
module Rng = Dangers_util.Rng
module Common = Dangers_replication.Common
module Repl_stats = Dangers_replication.Repl_stats
module Reconcile = Dangers_replication.Reconcile
module Acceptance = Dangers_core.Acceptance
module Two_tier = Dangers_core.Two_tier
module Op = Dangers_txn.Op

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

let o n = Oid.of_int n

(* --- Store functor at a non-float value type --- *)

module Pair_value = struct
  type t = int * string

  let equal (a, b) (c, d) = Int.equal a c && String.equal b d
  let pp ppf (n, s) = Format.fprintf ppf "(%d, %s)" n s
end

module Pstore = Store.Make (Pair_value)

let test_store_functor_generic () =
  let s = Pstore.create ~db_size:3 ~init:(fun _ -> (0, "init")) in
  let stamp = { Timestamp.counter = 1; node = 0 } in
  Pstore.write s (o 1) (7, "seven") stamp;
  checkb "read back" true (Pair_value.equal (7, "seven") (Pstore.read s (o 1)));
  let t = Pstore.copy s in
  checkb "copies equal" true (Pstore.content_equal s t);
  (match
     Pstore.apply_if_newer s (o 1) (9, "nine") { Timestamp.counter = 0; node = 0 }
   with
  | `Stale -> ()
  | `Applied -> Alcotest.fail "older stamp must be stale");
  checkb "value preserved" true (Pair_value.equal (7, "seven") (Pstore.read s (o 1)))

(* --- Exponential connectivity distribution --- *)

let test_exponential_connectivity () =
  let engine = Engine.create () in
  let toggles = ref 0 in
  let spec =
    {
      Connectivity.time_between_disconnects = 10.;
      disconnected_time = 10.;
      distribution = Connectivity.Exponential;
      start_connected = true;
    }
  in
  let schedule =
    Connectivity.install ~clock:(Clock.of_engine engine) ~rng:(Rng.create ~seed:3) ~spec
      ~set_connected:(fun _ -> incr toggles)
  in
  Engine.run engine ~until:1000.;
  Connectivity.stop schedule;
  (* Mean cycle 20s over 1000s: expect ~100 toggles; loose band. *)
  checkb "toggled a plausible number of times" true
    (!toggles > 50 && !toggles < 200)

(* --- Two-tier with real message delay still converges --- *)

let test_two_tier_with_delay () =
  let params =
    { Params.default with nodes = 3; db_size = 40; tps = 3.;
      time_between_disconnects = 10.; disconnected_time = 15. }
  in
  let profile =
    Dangers_workload.Profile.create ~update_kind:Dangers_workload.Profile.Increments
      ~actions:2 ()
  in
  let sys =
    Two_tier.create ~profile ~delay:(Delay.Constant 0.05) ~base_nodes:1 params
      ~seed:8
  in
  Two_tier.start sys;
  Clock.run_for (Two_tier.base sys).Common.clock 60.;
  Two_tier.quiesce_and_sync sys;
  checkb "converged despite delays" true (Two_tier.converged sys);
  checkb "serializable" true (Two_tier.base_history_serializable sys)

(* --- Custom reconcile rule and custom acceptance --- *)

let test_custom_rule_and_acceptance () =
  let stamp = { Timestamp.counter = 4; node = 1 } in
  let incoming =
    { Reconcile.oid = o 0; old_stamp = Timestamp.zero; value = 10.;
      delta = None; stamp; origin = 1 }
  in
  let average =
    Reconcile.Custom
      (fun ~current_value ~current_stamp:_ u ->
        Reconcile.Merge ((current_value +. u.Reconcile.value) /. 2.))
  in
  (match
     Reconcile.resolve average ~current_value:20.
       ~current_stamp:{ Timestamp.counter = 1; node = 0 } incoming
   with
  | Reconcile.Merge v -> checkf "average merge" 15. v
  | _ -> Alcotest.fail "merge expected");
  checkb "custom rule named" true (Reconcile.rule_name average = "custom");
  let within_ten_percent =
    Acceptance.Custom
      ( "within-10pct",
        fun outcomes ->
          List.for_all
            (fun { Acceptance.tentative; base; _ } ->
              Float.abs (base -. tentative) <= 0.1 *. Float.abs tentative)
            outcomes )
  in
  checkb "custom accepts" true
    (Acceptance.accept within_ten_percent
       [ { Acceptance.oid = o 0; tentative = 100.; base = 105. } ]);
  (match
     Acceptance.explain within_ten_percent
       [ { Acceptance.oid = o 0; tentative = 100.; base = 150. } ]
   with
  | Some reason ->
      checkb "custom diagnostic names the criterion" true
        (String.length reason > 0)
  | None -> Alcotest.fail "custom rejection must explain")

(* --- Repl_stats pretty-printer and metrics odds and ends --- *)

let test_summary_pp_and_metrics_names () =
  let engine = Engine.create () in
  let metrics = Metrics.of_engine engine in
  Metrics.incr metrics Repl_stats.commits;
  Metrics.incr metrics Repl_stats.waits;
  ignore (Engine.schedule engine ~delay:2. (fun () -> ()));
  Engine.run engine;
  let summary = Repl_stats.summarize ~scheme:"test" metrics in
  let rendered = Format.asprintf "%a" Repl_stats.pp_summary summary in
  checkb "pp mentions scheme" true (String.length rendered > 10);
  Alcotest.check (Alcotest.list Alcotest.string) "counter names sorted"
    [ Repl_stats.commits; Repl_stats.waits ]
    (Metrics.counter_names metrics);
  checki "events fired" 1 (Engine.events_fired engine)

(* --- Two-tier submit routes through a connected mobile directly --- *)

let test_connected_mobile_direct () =
  let params = { Params.default with nodes = 2; db_size = 10; tps = 1. } in
  let sys =
    Two_tier.create ~mobility:Connectivity.base_node ~base_nodes:1 params ~seed:9
  in
  Two_tier.submit sys ~node:1 [ Op.Increment (o 1, 4.) ];
  Common.drain (Two_tier.base sys);
  checki "no tentative work" 0
    (Metrics.total_count (Two_tier.base sys).Common.metrics "tentative_commits");
  checkf "applied at the base" 4.
    (Dangers_storage.Store.Fstore.read (Two_tier.base sys).Common.stores.(0) (o 1))

let suite =
  [
    Alcotest.test_case "store functor generic value" `Quick test_store_functor_generic;
    Alcotest.test_case "exponential connectivity" `Quick test_exponential_connectivity;
    Alcotest.test_case "two-tier with delay" `Quick test_two_tier_with_delay;
    Alcotest.test_case "custom rule and acceptance" `Quick test_custom_rule_and_acceptance;
    Alcotest.test_case "summary pp and metrics names" `Quick
      test_summary_pp_and_metrics_names;
    Alcotest.test_case "connected mobile direct" `Quick test_connected_mobile_direct;
  ]
