(* Continuous telemetry: the time-series recorder, the Prometheus
   encoder, the live protocol's scrape arms, and the guarantee that
   attaching a series recorder does not perturb a simulated run. *)

module Json = Dangers_obs.Json
module Metrics = Dangers_obs.Metrics
module Timeseries = Dangers_obs.Timeseries
module Prometheus = Dangers_obs.Prometheus
module Observe = Dangers_sim.Observe
module Scheme = Dangers_experiments.Scheme
module Params = Dangers_analytic.Params
module Connectivity = Dangers_net.Connectivity
module Protocol = Dangers_live.Protocol

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* --- Timeseries --- *)

let test_ring_wraparound () =
  let registry = Metrics.create () in
  let hits = Metrics.counter registry "hits" in
  let series = Timeseries.create ~capacity:3 ~interval:1.0 registry in
  for i = 1 to 5 do
    Metrics.add hits 10;
    ignore (Timeseries.sample series ~now:(float_of_int i))
  done;
  checki "sampled counts every window" 5 (Timeseries.sampled series);
  checki "dropped = sampled - capacity" 2 (Timeseries.dropped series);
  let windows = Timeseries.windows series in
  checki "ring retains capacity windows" 3 (List.length windows);
  Alcotest.check (Alcotest.list Alcotest.int) "oldest first after wrap"
    [ 2; 3; 4 ]
    (List.map (fun w -> w.Timeseries.w_index) windows);
  (match Timeseries.last series with
  | Some w ->
      checki "last is the newest window" 4 w.Timeseries.w_index;
      checki "cumulative counter" 50 (List.assoc "hits" w.Timeseries.w_counters)
  | None -> Alcotest.fail "last missing")

let test_delta_and_rate () =
  let registry = Metrics.create () in
  let hits = Metrics.counter registry "hits" in
  let series = Timeseries.create ~interval:2.0 registry in
  Metrics.add hits 4;
  let w1 = Timeseries.sample series ~now:2.0 in
  checkf "first window dt from origin" 2.0 w1.Timeseries.w_dt;
  checki "first delta is the cumulative value" 4 (Timeseries.delta w1 "hits");
  checkf "first rate" 2.0 (Timeseries.rate w1 "hits");
  Metrics.add hits 10;
  let w2 = Timeseries.sample series ~now:4.0 in
  checki "delta against previous window" 10 (Timeseries.delta w2 "hits");
  checkf "rate = delta / dt" 5.0 (Timeseries.rate w2 "hits");
  checki "absent counter deltas to zero" 0 (Timeseries.delta w2 "missing");
  (* A counter born mid-series deltas from zero. *)
  let late = Metrics.counter registry "late" in
  Metrics.add late 7;
  let w3 = Timeseries.sample series ~now:6.0 in
  checki "newborn counter delta" 7 (Timeseries.delta w3 "late")

let test_rebase () =
  let registry = Metrics.create () in
  let hits = Metrics.counter registry "hits" in
  let series = Timeseries.create ~interval:1.0 registry in
  Metrics.add hits 5;
  Timeseries.rebase series ~now:10.0;
  Metrics.add hits 3;
  let w = Timeseries.sample series ~now:11.0 in
  checki "rebase swallows earlier counts" 3 (Timeseries.delta w "hits");
  checkf "dt measured from rebase" 1.0 w.Timeseries.w_dt

let test_series_jsonl_roundtrip () =
  let registry = Metrics.create () in
  let hits = Metrics.counter registry "hits" in
  let h = Metrics.histogram ~buckets:[| 0.1; 1. |] registry "lat" in
  Metrics.set_gauge (Metrics.gauge registry "depth") 3.5;
  Metrics.observe h 0.05;
  let series = Timeseries.create ~interval:0.5 registry in
  Metrics.add hits 2;
  let w1 = Timeseries.sample series ~now:0.5 in
  Metrics.add hits 5;
  ignore (Timeseries.sample series ~now:1.0);
  let jsonl = Timeseries.to_jsonl ~label:"unit" ~seed:7 series in
  (match Timeseries.validate jsonl with
  | Ok (series_count, windows) ->
      checki "one header line" 1 series_count;
      checki "two window lines" 2 windows
  | Error message -> Alcotest.fail message);
  let w1' = Timeseries.window_of_json (Timeseries.window_to_json w1) in
  checkb "window json round-trips" true (w1 = w1');
  (* The whole-series form is exactly header + per-window lines, which is
     what the live server streams incrementally. *)
  let streamed =
    String.concat ""
      (Json.to_string (Timeseries.header_json ~label:"unit" ~seed:7 series)
       :: "\n"
      :: List.concat_map
           (fun w -> [ Json.to_string (Timeseries.window_to_json w); "\n" ])
           (Timeseries.windows series))
  in
  checks "streaming form matches to_jsonl" jsonl streamed

let test_series_validate_rejects () =
  let reject name input =
    match Timeseries.validate input with
    | Ok _ -> Alcotest.fail (name ^ ": accepted")
    | Error (_ : string) -> ()
  in
  reject "window before header"
    {|{"kind":"window","i":0,"t":1,"dt":1,"counters":{},"deltas":{},"gauges":{},"histograms":{}}|};
  reject "wrong schema" {|{"schema":"nope/v9","kind":"header","interval":1}|};
  reject "bad interval" {|{"schema":"dangers/metrics-series/v1","kind":"header","interval":0}|};
  reject "unknown kind" {|{"kind":"mystery"}|};
  reject "not json" "series";
  match Timeseries.validate "" with
  | Ok (0, 0) -> ()
  | Ok _ | Error _ -> Alcotest.fail "empty input should be Ok (0, 0)"

(* --- quantile estimation --- *)

let test_histogram_quantile () =
  let hs =
    {
      Metrics.hs_uppers = [| 1.; 2.; 4. |];
      hs_counts = [| 2; 1; 1; 1 |];
      hs_count = 5;
      hs_sum = 10.;
    }
  in
  checkf "q=0 at the lower edge" 0. (Metrics.histogram_quantile hs ~q:0.);
  checkf "median interpolates inside its bucket" 1.5
    (Metrics.histogram_quantile hs ~q:0.5);
  checkf "overflow clamps to the largest finite upper" 4.
    (Metrics.histogram_quantile hs ~q:1.0);
  let empty =
    { Metrics.hs_uppers = [| 1. |]; hs_counts = [| 0; 0 |]; hs_count = 0; hs_sum = 0. }
  in
  checkf "empty histogram" 0. (Metrics.histogram_quantile empty ~q:0.99)

(* --- Prometheus exposition --- *)

let test_sanitize () =
  checks "dots fold" "scheme_commits_total"
    (Prometheus.sanitize_metric_name "scheme.commits_total");
  checks "leading digit prefixed" "_9lives" (Prometheus.sanitize_metric_name "9lives");
  checks "empty becomes underscore" "_" (Prometheus.sanitize_metric_name "");
  checks "colons survive" "a:b" (Prometheus.sanitize_metric_name "a:b");
  checks "label escaping" "a\\\\b\\\"c\\nd"
    (Prometheus.escape_label_value "a\\b\"c\nd")

let golden_snapshot =
  {
    Metrics.s_counters =
      [ ("9lives", 3); ("a.b", 1); ("a_b", 2); ("scheme.commits_total", 42) ];
    s_gauges = [ ("net.queue high-water", 7.5) ];
    s_histograms =
      [
        ( "scheme.commit_seconds",
          {
            Metrics.hs_uppers = [| 0.01; 0.1; 1. |];
            hs_counts = [| 3; 2; 1; 1 |];
            hs_count = 7;
            hs_sum = 1.234;
          } );
      ];
    s_phases = [];
    s_warnings_total = 2;
  }

let test_prometheus_golden () =
  let ic = open_in_bin "prom_golden.txt" in
  let expected = In_channel.input_all ic in
  close_in ic;
  checks "exposition matches the golden file" expected
    (Prometheus.of_snapshot golden_snapshot)

let test_prometheus_lint () =
  let text = Prometheus.of_snapshot golden_snapshot in
  (match Prometheus.lint text with
  (* 4 counters + 1 gauge + histogram (3 buckets + Inf + sum + count) +
     warnings_total = 12 samples. *)
  | Ok samples -> checki "sample count" 12 samples
  | Error message -> Alcotest.fail message);
  let reject name input =
    match Prometheus.lint input with
    | Ok _ -> Alcotest.fail (name ^ ": accepted")
    | Error (_ : string) -> ()
  in
  reject "invalid name" "0bad 1\n";
  reject "duplicate TYPE" "# TYPE a counter\n# TYPE a counter\na 1\n";
  reject "unknown type" "# TYPE a fancy\na 1\n";
  reject "unparsable value" "a one\n";
  reject "non-cumulative buckets"
    "# TYPE h histogram\n\
     h_bucket{le=\"1\"} 5\n\
     h_bucket{le=\"+Inf\"} 3\n\
     h_sum 1\n\
     h_count 3\n";
  reject "count disagrees with +Inf"
    "# TYPE h histogram\n\
     h_bucket{le=\"1\"} 1\n\
     h_bucket{le=\"+Inf\"} 3\n\
     h_sum 1\n\
     h_count 4\n"

(* --- protocol round-trips for the scrape arms --- *)

let roundtrip codec value =
  let frame = Protocol.to_frame codec value in
  Protocol.of_payload codec (String.sub frame 4 (String.length frame - 4))

let test_protocol_scrape_arms () =
  checkb "Metrics_snapshot request" true
    (roundtrip Protocol.request Protocol.Metrics_snapshot
    = Protocol.Metrics_snapshot);
  checkb "Metrics_prom request" true
    (roundtrip Protocol.request Protocol.Metrics_prom = Protocol.Metrics_prom);
  let json = {|{"schema":"dangers/metrics/v1","counters":{}}|} in
  checkb "Metrics_json response" true
    (roundtrip Protocol.response (Protocol.Metrics_json json)
    = Protocol.Metrics_json json);
  let text = "# TYPE a counter\na 1\n" in
  checkb "Metrics_text response" true
    (roundtrip Protocol.response (Protocol.Metrics_text text)
    = Protocol.Metrics_text text);
  let stats =
    {
      Protocol.commits = 12;
      tentative_accepted = 3;
      tentative_rejected = 1;
      scope_violations = 0;
      warnings_total = 5;
      warnings = [ ("bench.compare.missing", 2); ("net.partition", 3) ];
    }
  in
  checkb "Stats_reply with warnings" true
    (roundtrip Protocol.response (Protocol.Stats_reply stats)
    = Protocol.Stats_reply stats);
  checkb "Error response" true
    (roundtrip Protocol.response (Protocol.Error "boom") = Protocol.Error "boom")

(* --- the new instrumentation must not perturb the scheme --- *)

let churn_spec () =
  let params = { Params.default with Params.nodes = 4 } in
  Scheme.spec ~base_nodes:2
    ~connectivity:(Connectivity.day_cycle ~connected:3. ~disconnected:2.)
    params

let test_two_tier_series_identity () =
  let scheme =
    match Scheme.find "two-tier" with
    | Some s -> s
    | None -> Alcotest.fail "two-tier not registered"
  in
  let plain = Scheme.run_outcome scheme (churn_spec ()) ~seed:11 ~warmup:1. ~span:10. in
  let registry = Metrics.create () in
  let series = Timeseries.create ~interval:1.0 registry in
  let observed =
    Observe.with_observation ~obs:registry ~series (fun () ->
        Scheme.run_outcome scheme (churn_spec ()) ~seed:11 ~warmup:1. ~span:10.)
  in
  checkb "summary identical with a series attached" true
    (plain.Scheme.summary = observed.Scheme.summary
    && plain.Scheme.diagnostics = observed.Scheme.diagnostics);
  (* The series really recorded the measured window... *)
  checkb "windows sampled" true (Timeseries.sampled series >= 10);
  (* ...including the new two-tier lag instrumentation. *)
  let snapshot = Metrics.snapshot registry in
  checkb "aggregate queue-depth gauge" true
    (Metrics.snapshot_gauge snapshot "two_tier.tentative_queue_depth" <> None);
  checkb "aggregate oldest-age gauge" true
    (Metrics.snapshot_gauge snapshot "two_tier.oldest_tentative_age_seconds"
    <> None);
  checkb "per-mobile gauges present" true
    (Metrics.snapshot_gauge snapshot "two_tier.mobile.00.tentative_queue_depth"
    <> None);
  checkb "commit latency histogram populated" true
    (match Metrics.snapshot_histogram snapshot "scheme.commit_seconds" with
    | Some h -> h.Metrics.hs_count > 0
    | None -> false);
  checkb "reconcile-lag histogram registered" true
    (Metrics.snapshot_histogram snapshot "two_tier.reconcile_lag_seconds"
    <> None);
  (* And every window of the series carries the lag gauges. *)
  checkb "windows carry the lag gauges" true
    (List.for_all
       (fun w ->
         List.mem_assoc "two_tier.tentative_queue_depth" w.Timeseries.w_gauges)
       (Timeseries.windows series))

let test_series_only_attaches_with_registry () =
  (* A series without a registry in the ambient context is ignored: the
     scheme has no registry to sample from, so nothing is recorded. *)
  let orphan = Timeseries.create ~interval:1.0 (Metrics.create ()) in
  let scheme = Option.get (Scheme.find "two-tier") in
  ignore
    (Observe.with_observation ~series:orphan (fun () ->
         Scheme.run_outcome scheme (churn_spec ()) ~seed:11 ~warmup:1. ~span:5.));
  checki "orphan series untouched" 0 (Timeseries.sampled orphan)

let suite =
  [
    Alcotest.test_case "ring wraparound." `Quick test_ring_wraparound;
    Alcotest.test_case "delta and rate math." `Quick test_delta_and_rate;
    Alcotest.test_case "rebase resets the baseline." `Quick test_rebase;
    Alcotest.test_case "series JSONL round-trips." `Quick test_series_jsonl_roundtrip;
    Alcotest.test_case "series validate rejects." `Quick test_series_validate_rejects;
    Alcotest.test_case "histogram quantile." `Quick test_histogram_quantile;
    Alcotest.test_case "prometheus name sanitisation." `Quick test_sanitize;
    Alcotest.test_case "prometheus golden exposition." `Quick test_prometheus_golden;
    Alcotest.test_case "prometheus lint." `Quick test_prometheus_lint;
    Alcotest.test_case "protocol scrape arms round-trip." `Quick
      test_protocol_scrape_arms;
    Alcotest.test_case "two-tier unperturbed by series." `Quick
      test_two_tier_series_identity;
    Alcotest.test_case "series needs a registry." `Quick
      test_series_only_attaches_with_registry;
  ]
