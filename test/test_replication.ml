(* Integration tests for the four baseline replication schemes, plus the
   pure reconciliation / convergence / quorum models. *)

module Params = Dangers_analytic.Params
module Profile = Dangers_workload.Profile
module Op = Dangers_txn.Op
module Oid = Dangers_storage.Oid
module Timestamp = Dangers_storage.Timestamp
module Fstore = Dangers_storage.Store.Fstore
module Engine = Dangers_sim.Engine
module Clock = Dangers_runtime.Clock
module Metrics = Dangers_sim.Metrics
module Connectivity = Dangers_net.Connectivity

module Common = Dangers_replication.Common
module Repl_stats = Dangers_replication.Repl_stats
module Eager_group = Dangers_replication.Eager_group
module Eager_master = Dangers_replication.Eager_master
module Lazy_group = Dangers_replication.Lazy_group
module Lazy_master = Dangers_replication.Lazy_master
module Reconcile = Dangers_replication.Reconcile
module Convergence = Dangers_replication.Convergence
module Quorum = Dangers_replication.Quorum

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

let o n = Oid.of_int n

let small_params =
  { Params.default with db_size = 50; nodes = 3; tps = 5.; actions = 3 }

let stores_converged stores =
  Array.for_all (fun s -> Fstore.content_equal stores.(0) s) stores

(* --- Eager group --- *)

let test_eager_group_replicates () =
  let sys = Eager_group.create small_params ~seed:1 in
  Eager_group.submit sys ~node:0 [ Op.Assign (o 7, 42.) ];
  Common.drain (Eager_group.base sys);
  let stores = (Eager_group.base sys).Common.stores in
  Array.iter (fun s -> checkf "replica updated" 42. (Fstore.read s (o 7))) stores;
  checkb "replicas identical" true (stores_converged stores);
  checki "one commit" 1
    (Metrics.total_count (Eager_group.base sys).Common.metrics Repl_stats.commits)

let test_eager_group_under_load () =
  let sys = Eager_group.create small_params ~seed:2 in
  Eager_group.start sys;
  Common.measure (Eager_group.base sys) ~warmup:2. ~span:10.;
  Eager_group.stop_load sys;
  Common.drain (Eager_group.base sys);
  let s = Eager_group.summary sys in
  checkb "commits happened" true (s.Repl_stats.commits > 50);
  checkb "no reconciliations in eager" true (s.Repl_stats.reconciliations = 0);
  checkb "replicas converged after drain" true
    (stores_converged (Eager_group.base sys).Common.stores)

let test_eager_deadlock_forced () =
  (* Two transactions updating the same two objects in opposite order, with
     one node: the classic cycle must be detected and both must still
     commit via restart. *)
  let params = { small_params with nodes = 1; tps = 1. } in
  let sys = Eager_group.create params ~seed:3 in
  Eager_group.submit sys ~node:0 [ Op.Assign (o 1, 1.); Op.Assign (o 2, 1.) ];
  Eager_group.submit sys ~node:0 [ Op.Assign (o 2, 2.); Op.Assign (o 1, 2.) ];
  Common.drain (Eager_group.base sys);
  let metrics = (Eager_group.base sys).Common.metrics in
  checki "both committed" 2 (Metrics.total_count metrics Repl_stats.commits);
  checki "one deadlock" 1 (Metrics.total_count metrics Repl_stats.deadlocks);
  checki "one restart" 1 (Metrics.total_count metrics Repl_stats.restarts)

let test_eager_duration_scales_with_nodes () =
  (* Equation (6): an uncontended eager transaction lasts
     Actions x Nodes x Action_Time. *)
  let duration nodes =
    let params = { small_params with nodes; tps = 0.001 } in
    let sys = Eager_group.create params ~seed:4 in
    Eager_group.submit sys ~node:0
      [ Op.Assign (o 1, 1.); Op.Assign (o 2, 1.); Op.Assign (o 3, 1.) ];
    Common.drain (Eager_group.base sys);
    Dangers_util.Stats.mean
      (Metrics.sample_stats (Eager_group.base sys).Common.metrics
         Repl_stats.duration_sample)
  in
  checkf "one node: 3 x 0.01" 0.03 (duration 1);
  checkf "four nodes: 3 x 4 x 0.01" 0.12 (duration 4)

(* --- Eager master --- *)

let test_eager_master_replicates () =
  let sys = Eager_master.create small_params ~seed:5 in
  Eager_master.submit sys ~node:2 [ Op.Increment (o 4, 10.) ];
  Common.drain (Eager_master.base sys);
  let stores = (Eager_master.base sys).Common.stores in
  Array.iter (fun s -> checkf "replica updated" 10. (Fstore.read s (o 4))) stores;
  checki "object 4 mastered at node 1" 1 (Eager_master.master_of sys (o 4))

(* --- Lazy group --- *)

let test_lazy_group_propagates () =
  let sys = Lazy_group.create small_params ~seed:6 in
  Lazy_group.submit sys ~node:1 [ Op.Assign (o 9, 5.) ];
  Common.drain (Lazy_group.base sys);
  let stores = (Lazy_group.base sys).Common.stores in
  Array.iter (fun s -> checkf "lazy replica updated" 5. (Fstore.read s (o 9))) stores;
  let metrics = (Lazy_group.base sys).Common.metrics in
  checki "applied at two peers" 2 (Metrics.total_count metrics Repl_stats.replica_applied);
  checki "no reconciliation" 0 (Metrics.total_count metrics Repl_stats.reconciliations)

let test_lazy_group_conflict_reconciles () =
  (* Both nodes assign the same object "simultaneously": each peer sees a
     broken timestamp chain; timestamp priority converges on the larger
     stamp. *)
  let params = { small_params with nodes = 2; tps = 0.0001 } in
  let sys = Lazy_group.create params ~seed:7 in
  Lazy_group.submit sys ~node:0 [ Op.Assign (o 3, 100.) ];
  Lazy_group.submit sys ~node:1 [ Op.Assign (o 3, 200.) ];
  Common.drain (Lazy_group.base sys);
  let metrics = (Lazy_group.base sys).Common.metrics in
  checkb "reconciliations detected" true
    (Metrics.total_count metrics Repl_stats.reconciliations >= 1);
  let stores = (Lazy_group.base sys).Common.stores in
  checkb "replicas converged" true (stores_converged stores);
  (* Timestamp priority: node 1's stamp (same counter, higher node) wins. *)
  checkf "last-writer value" 200. (Fstore.read stores.(0) (o 3))

let test_lazy_group_additive_exact () =
  let params = { small_params with nodes = 3 } in
  let profile = Profile.create ~update_kind:Profile.Increments ~actions:3 () in
  let sys =
    Lazy_group.create ~profile ~initial_value:100. ~rule:Reconcile.Additive params
      ~seed:8
  in
  Lazy_group.start sys;
  Clock.run_for (Lazy_group.base sys).Common.clock 20.;
  Lazy_group.stop_load sys;
  Lazy_group.force_sync sys;
  let stores = (Lazy_group.base sys).Common.stores in
  checkb "replicas converged" true
    (Array.for_all
       (fun s ->
         Fstore.fold s ~init:true ~f:(fun acc oid value _ ->
             acc && Float.abs (value -. Lazy_group.expected_sum sys oid) < 1e-6))
       stores);
  checkb "some commits" true
    (Metrics.total_count (Lazy_group.base sys).Common.metrics Repl_stats.commits > 20)

let test_lazy_group_timestamp_loses_increments () =
  (* The §6 lost-update problem: increments resolved by last-writer-wins
     drop deltas under concurrency. With heavy contention on a tiny
     database, the converged state must differ from the exact sums. *)
  let params = { small_params with db_size = 20; nodes = 3; tps = 10.; actions = 2 } in
  let profile = Profile.create ~update_kind:Profile.Increments ~actions:2 () in
  let sys =
    Lazy_group.create ~profile ~initial_value:0.
      ~rule:Reconcile.Timestamp_priority params ~seed:9
  in
  Lazy_group.start sys;
  Clock.run_for (Lazy_group.base sys).Common.clock 30.;
  Lazy_group.stop_load sys;
  Lazy_group.force_sync sys;
  let store = (Lazy_group.base sys).Common.stores.(0) in
  let lost =
    Fstore.fold store ~init:0 ~f:(fun acc oid value _ ->
        if Float.abs (value -. Lazy_group.expected_sum sys oid) > 1e-6 then acc + 1
        else acc)
  in
  checkb "updates were lost" true (lost > 0)

let test_lazy_group_mobile_parks_updates () =
  let params = { small_params with nodes = 2; tps = 2. } in
  let mobility = Connectivity.day_cycle ~connected:5. ~disconnected:30. in
  let sys = Lazy_group.create ~mobility params ~seed:10 in
  Lazy_group.start sys;
  Clock.run_for (Lazy_group.base sys).Common.clock 60.;
  Lazy_group.stop_load sys;
  Lazy_group.force_sync sys;
  checkb "replicas converged after reconnect" true
    (stores_converged (Lazy_group.base sys).Common.stores)

(* --- Lazy master --- *)

let test_lazy_master_routes_to_master () =
  let sys = Lazy_master.create small_params ~seed:11 in
  Lazy_master.submit sys ~node:0 [ Op.Assign (o 5, 50.) ];
  Common.drain (Lazy_master.base sys);
  checki "object 5 mastered at node 2" 2 (Lazy_master.master_of sys (o 5));
  let stores = (Lazy_master.base sys).Common.stores in
  Array.iter (fun s -> checkf "all replicas" 50. (Fstore.read s (o 5))) stores

let test_lazy_master_under_load () =
  let sys = Lazy_master.create { small_params with tps = 10. } ~seed:12 in
  Lazy_master.start sys;
  Common.measure (Lazy_master.base sys) ~warmup:2. ~span:10.;
  Lazy_master.stop_load sys;
  Common.drain (Lazy_master.base sys);
  let s = Lazy_master.summary sys in
  checkb "commits" true (s.Repl_stats.commits > 100);
  checki "lazy master never reconciles" 0 s.Repl_stats.reconciliations;
  checkb "replicas converged" true
    (stores_converged (Lazy_master.base sys).Common.stores)

(* --- Reconcile rules --- *)

let stamp c n = { Timestamp.counter = c; node = n }

let update ?(delta = None) ~value ~stamp:s ~origin () =
  {
    Reconcile.oid = o 0;
    old_stamp = Timestamp.zero;
    value;
    delta;
    stamp = s;
    origin;
  }

let test_reconcile_rules () =
  let current_stamp = stamp 5 0 and current_value = 10. in
  let newer = update ~value:20. ~stamp:(stamp 6 1) ~origin:1 () in
  let older = update ~value:30. ~stamp:(stamp 4 1) ~origin:1 () in
  let is expected actual = checkb "decision" true (expected = actual) in
  is Reconcile.Take_incoming
    (Reconcile.resolve Reconcile.Timestamp_priority ~current_value ~current_stamp newer);
  is Reconcile.Keep_current
    (Reconcile.resolve Reconcile.Timestamp_priority ~current_value ~current_stamp older);
  is Reconcile.Take_incoming
    (Reconcile.resolve (Reconcile.Value_priority `Max) ~current_value ~current_stamp older);
  is Reconcile.Keep_current
    (Reconcile.resolve (Reconcile.Value_priority `Min) ~current_value ~current_stamp newer);
  (* Site priority: current stamp's node is 0; prefer site 1. *)
  is Reconcile.Take_incoming
    (Reconcile.resolve (Reconcile.Site_priority [| 1; 0 |]) ~current_value
       ~current_stamp older);
  is Reconcile.Keep_current
    (Reconcile.resolve (Reconcile.Site_priority [| 0; 1 |]) ~current_value
       ~current_stamp newer);
  (match
     Reconcile.resolve Reconcile.Additive ~current_value ~current_stamp
       (update ~delta:(Some 7.) ~value:99. ~stamp:(stamp 6 1) ~origin:1 ())
   with
  | Reconcile.Merge v -> checkf "additive merge" 17. v
  | Reconcile.Keep_current | Reconcile.Take_incoming | Reconcile.Drop ->
      Alcotest.fail "expected merge");
  checkb "ignore rule drops" true
    (Reconcile.resolve Reconcile.Ignore ~current_value ~current_stamp newer
     = Reconcile.Drop);
  checkb "additive lossless" true (Reconcile.lossless Reconcile.Additive);
  checkb "timestamp lossy" false (Reconcile.lossless Reconcile.Timestamp_priority)

(* --- Convergence: Notes --- *)

let test_notes_appends_converge () =
  let a = Convergence.Notes.create ~site:0 and b = Convergence.Notes.create ~site:1 in
  Convergence.Notes.append a "from a";
  Convergence.Notes.append b "from b";
  Convergence.Notes.exchange a b;
  checkb "converged" true (Convergence.Notes.converged [ a; b ]);
  checki "both notes" 2 (List.length (Convergence.Notes.notes a));
  checki "no lost appends" 0 (Convergence.Notes.lost_updates [ a; b ])

let test_notes_replace_loses () =
  let a = Convergence.Notes.create ~site:0 and b = Convergence.Notes.create ~site:1 in
  Convergence.Notes.replace a ~key:"balance" ~value:100.;
  Convergence.Notes.replace b ~key:"balance" ~value:200.;
  Convergence.Notes.exchange a b;
  checkb "converged" true (Convergence.Notes.converged [ a; b ]);
  checki "one lost update" 1 (Convergence.Notes.lost_updates [ a; b ]);
  checki "two issued" 2 (Convergence.Notes.updates_issued [ a; b ]);
  (* Serial replaces are not lost. *)
  Convergence.Notes.replace a ~key:"balance" ~value:300.;
  Convergence.Notes.exchange a b;
  checki "still only the concurrent one lost" 1
    (Convergence.Notes.lost_updates [ a; b ])

let test_notes_three_replicas () =
  let replicas = List.init 3 (fun site -> Convergence.Notes.create ~site) in
  List.iteri
    (fun i r -> Convergence.Notes.replace r ~key:"k" ~value:(float_of_int i))
    replicas;
  (match replicas with
  | [ a; b; c ] ->
      Convergence.Notes.exchange a b;
      Convergence.Notes.exchange b c;
      Convergence.Notes.exchange a c;
      Convergence.Notes.exchange a b;
      checkb "converged" true (Convergence.Notes.converged replicas);
      checki "two of three lost" 2 (Convergence.Notes.lost_updates replicas)
  | _ -> assert false)

(* --- Convergence: Access --- *)

let test_access_causal_update_no_conflict () =
  let a = Convergence.Access.create ~site:0 ~db_size:4 in
  let b = Convergence.Access.create ~site:1 ~db_size:4 in
  Convergence.Access.update a (o 1) 10.;
  checki "no conflict when causal" 0 (Convergence.Access.exchange a b);
  checkf "propagated" 10. (Convergence.Access.read b (o 1));
  Convergence.Access.update b (o 1) 20.;
  checki "still causal" 0 (Convergence.Access.exchange a b);
  checkf "second update wins" 20. (Convergence.Access.read a (o 1));
  checkb "converged" true (Convergence.Access.converged [ a; b ])

let test_access_concurrent_conflict () =
  let a = Convergence.Access.create ~site:0 ~db_size:4 in
  let b = Convergence.Access.create ~site:1 ~db_size:4 in
  Convergence.Access.update a (o 2) 1.;
  Convergence.Access.update b (o 2) 2.;
  checki "one conflict reported" 1 (Convergence.Access.exchange a b);
  checkb "converged" true (Convergence.Access.converged [ a; b ]);
  checkf "later stamp wins" 2. (Convergence.Access.read a (o 2));
  checki "conflict recorded at a" 1 (Convergence.Access.conflicts_reported a)

(* --- Quorum --- *)

let test_quorum_majority_availability () =
  let q = Quorum.majority ~n:3 in
  (* P(>=2 of 3 up) at p=0.9 = 3 x 0.81 x 0.1 + 0.729 = 0.972 *)
  checkf "majority availability" 0.972 (Quorum.write_availability q ~p_up:0.9);
  checkb "can write with 2 up" true
    (Quorum.can_write q ~up:[| true; true; false |]);
  checkb "cannot write with 1 up" false
    (Quorum.can_write q ~up:[| true; false; false |])

let test_quorum_rowa () =
  let q = Quorum.read_one_write_all ~n:4 in
  checkf "write needs everyone" (0.9 ** 4.) (Quorum.write_availability q ~p_up:0.9);
  checkf "read needs anyone" (1. -. (0.1 ** 4.)) (Quorum.read_availability q ~p_up:0.9)

let test_quorum_validation () =
  Alcotest.check_raises "overlap required"
    (Invalid_argument "Quorum.create: need r + w > total votes") (fun () ->
      ignore (Quorum.create ~weights:[| 1; 1; 1 |] ~read_quorum:1 ~write_quorum:2))

let test_quorum_weighted () =
  (* Gifford's weighted example: a heavy replica can carry the quorum. *)
  let q = Quorum.create ~weights:[| 2; 1; 1 |] ~read_quorum:2 ~write_quorum:3 in
  checkb "heavy + light can write" true
    (Quorum.can_write q ~up:[| true; true; false |]);
  checkb "two lights cannot" false
    (Quorum.can_write q ~up:[| false; true; true |]);
  checkb "heavy alone can read" true (Quorum.can_read q ~up:[| true; false; false |])

(* --- Determinism across the whole stack --- *)

let test_scheme_determinism () =
  let run () =
    let sys = Lazy_master.create { small_params with tps = 8. } ~seed:99 in
    Lazy_master.start sys;
    Common.measure (Lazy_master.base sys) ~warmup:1. ~span:5.;
    Lazy_master.stop_load sys;
    Common.drain (Lazy_master.base sys);
    let s = Lazy_master.summary sys in
    (s.Repl_stats.commits, s.Repl_stats.waits, s.Repl_stats.deadlocks)
  in
  let a = run () and b = run () in
  checkb "identical metrics under one seed" true (a = b)

let suite =
  [
    Alcotest.test_case "eager group replicates" `Quick test_eager_group_replicates;
    Alcotest.test_case "eager group under load" `Quick test_eager_group_under_load;
    Alcotest.test_case "eager deadlock forced" `Quick test_eager_deadlock_forced;
    Alcotest.test_case "eager duration scales" `Quick test_eager_duration_scales_with_nodes;
    Alcotest.test_case "eager master replicates" `Quick test_eager_master_replicates;
    Alcotest.test_case "lazy group propagates" `Quick test_lazy_group_propagates;
    Alcotest.test_case "lazy group conflict reconciles" `Quick test_lazy_group_conflict_reconciles;
    Alcotest.test_case "lazy group additive exact" `Quick test_lazy_group_additive_exact;
    Alcotest.test_case "lazy group timestamp loses" `Quick test_lazy_group_timestamp_loses_increments;
    Alcotest.test_case "lazy group mobile parks" `Quick test_lazy_group_mobile_parks_updates;
    Alcotest.test_case "lazy master routes" `Quick test_lazy_master_routes_to_master;
    Alcotest.test_case "lazy master under load" `Quick test_lazy_master_under_load;
    Alcotest.test_case "reconcile rules" `Quick test_reconcile_rules;
    Alcotest.test_case "notes appends converge" `Quick test_notes_appends_converge;
    Alcotest.test_case "notes replace loses" `Quick test_notes_replace_loses;
    Alcotest.test_case "notes three replicas" `Quick test_notes_three_replicas;
    Alcotest.test_case "access causal" `Quick test_access_causal_update_no_conflict;
    Alcotest.test_case "access concurrent conflict" `Quick test_access_concurrent_conflict;
    Alcotest.test_case "quorum majority" `Quick test_quorum_majority_availability;
    Alcotest.test_case "quorum rowa" `Quick test_quorum_rowa;
    Alcotest.test_case "quorum validation" `Quick test_quorum_validation;
    Alcotest.test_case "quorum weighted" `Quick test_quorum_weighted;
    Alcotest.test_case "scheme determinism" `Quick test_scheme_determinism;
  ]
