(* End-to-end: every named scenario runs under every scheme without
   violating its scheme's core invariant. *)

module Scenario = Dangers_workload.Scenario
module Params = Dangers_analytic.Params
module Fstore = Dangers_storage.Store.Fstore
module Common = Dangers_replication.Common
module Repl_stats = Dangers_replication.Repl_stats
module Scheme = Dangers_experiments.Scheme
module Connectivity = Dangers_net.Connectivity
module Lazy_group = Dangers_replication.Lazy_group

let checkb = Alcotest.check Alcotest.bool

(* Keep runtimes test-sized. *)
let shrink params = { params with Params.tps = Float.min params.Params.tps 5. }

let test_scenario scenario () =
  let params = shrink scenario.Scenario.params in
  let profile = scenario.Scenario.profile in
  let span = 20. and warmup = 2. in
  let spec = Scheme.spec ~profile params in
  let eager = Scheme.run_named "eager-group" spec ~seed:3 ~warmup ~span in
  checkb "eager commits" true (eager.Repl_stats.commits > 0);
  checkb "eager never reconciles" true (eager.Repl_stats.reconciliations = 0);
  let lazy_m = Scheme.run_named "lazy-master" spec ~seed:3 ~warmup ~span in
  checkb "lazy-master commits" true (lazy_m.Repl_stats.commits > 0);
  checkb "lazy-master never reconciles" true
    (lazy_m.Repl_stats.reconciliations = 0);
  let lazy_g = Scheme.run_named "lazy-group" spec ~seed:3 ~warmup ~span in
  checkb "lazy-group commits" true (lazy_g.Repl_stats.commits > 0);
  (* Two-tier: run with the scenario's own mobility and verify the §7
     guarantees hold for this workload. *)
  let outcome =
    Scheme.run_outcome_named "two-tier"
      (Scheme.spec ~profile ~initial_value:scenario.Scenario.initial_value
         ~base_nodes:(max 1 (params.Params.nodes / 2))
         params)
      ~seed:3 ~warmup ~span
  in
  checkb "two-tier commits" true (outcome.Scheme.summary.Repl_stats.commits > 0);
  checkb "two-tier converged" true
    (Scheme.diagnostic outcome "converged" = Some 1.);
  checkb "two-tier base serializable" true
    (Scheme.diagnostic outcome "base_serializable" = Some 1.)

(* Lazy-group on the fully commutative scenarios must reach exact sums
   under the additive rule. *)
let test_commutative_scenarios_exact () =
  List.iter
    (fun scenario ->
      let params = shrink scenario.Scenario.params in
      let sys =
        Lazy_group.create ~profile:scenario.Scenario.profile
          ~initial_value:scenario.Scenario.initial_value
          ~rule:Dangers_replication.Reconcile.Additive params ~seed:5
      in
      Lazy_group.start sys;
      Dangers_runtime.Clock.run_for (Lazy_group.base sys).Common.clock 20.;
      Lazy_group.stop_load sys;
      Lazy_group.force_sync sys;
      let store = (Lazy_group.base sys).Common.stores.(0) in
      let deviation =
        Fstore.fold store ~init:0. ~f:(fun acc oid value _ ->
            acc +. Float.abs (value -. Lazy_group.expected_sum sys oid))
      in
      checkb (scenario.Scenario.name ^ " exact under additive") true
        (deviation < 1e-6))
    [ Scenario.inventory; Scenario.tpcb ]

let suite =
  List.map
    (fun scenario ->
      Alcotest.test_case ("scenario " ^ scenario.Scenario.name) `Slow
        (test_scenario scenario))
    Scenario.all
  @ [
      Alcotest.test_case "commutative scenarios exact" `Slow
        test_commutative_scenarios_exact;
    ]
