(* Lock table, waits-for cycle detection, and lock manager tests. *)

module Mode = Dangers_lock.Mode
module Lock_table = Dangers_lock.Lock_table
module Waits_for = Dangers_lock.Waits_for
module Lock_manager = Dangers_lock.Lock_manager

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let granted = function Lock_table.Granted -> true | Lock_table.Queued -> false

(* --- Mode --- *)

let test_mode () =
  checkb "S/S compatible" true (Mode.compatible Mode.S Mode.S);
  checkb "S/X incompatible" false (Mode.compatible Mode.S Mode.X);
  checkb "X/X incompatible" false (Mode.compatible Mode.X Mode.X);
  checkb "X covers S" true (Mode.covers ~held:Mode.X ~requested:Mode.S);
  checkb "S does not cover X" false (Mode.covers ~held:Mode.S ~requested:Mode.X)

(* --- Lock table --- *)

let noop () = ()

let test_grant_and_conflict () =
  let t = Lock_table.create () in
  checkb "first X granted" true
    (granted (Lock_table.acquire t ~owner:1 ~resource:10 ~mode:Mode.X ~on_grant:noop));
  checkb "second X queued" false
    (granted (Lock_table.acquire t ~owner:2 ~resource:10 ~mode:Mode.X ~on_grant:noop));
  checkb "owner 2 waiting" true (Lock_table.is_waiting t ~owner:2);
  Alcotest.check (Alcotest.list Alcotest.int) "blocked by holder" [ 1 ]
    (Lock_table.blockers t ~owner:2)

let test_shared_grants () =
  let t = Lock_table.create () in
  checkb "S granted" true
    (granted (Lock_table.acquire t ~owner:1 ~resource:5 ~mode:Mode.S ~on_grant:noop));
  checkb "second S granted" true
    (granted (Lock_table.acquire t ~owner:2 ~resource:5 ~mode:Mode.S ~on_grant:noop));
  checkb "X queued behind readers" false
    (granted (Lock_table.acquire t ~owner:3 ~resource:5 ~mode:Mode.X ~on_grant:noop));
  let blockers = List.sort Int.compare (Lock_table.blockers t ~owner:3) in
  Alcotest.check (Alcotest.list Alcotest.int) "both readers block" [ 1; 2 ] blockers

let test_release_wakes_fifo () =
  let t = Lock_table.create () in
  let woken = ref [] in
  let wake id () = woken := id :: !woken in
  ignore (Lock_table.acquire t ~owner:1 ~resource:7 ~mode:Mode.X ~on_grant:noop);
  ignore (Lock_table.acquire t ~owner:2 ~resource:7 ~mode:Mode.X ~on_grant:(wake 2));
  Lock_table.release_all t ~owner:1;
  Alcotest.check (Alcotest.list Alcotest.int) "first waiter woken" [ 2 ] !woken;
  checkb "2 now holds" true (Lock_table.holds t ~owner:2 ~resource:7 = Some Mode.X)

let test_strict_fifo_no_overtake () =
  (* An S request arriving behind a queued X must not overtake it. *)
  let t = Lock_table.create () in
  ignore (Lock_table.acquire t ~owner:1 ~resource:3 ~mode:Mode.S ~on_grant:noop);
  checkb "X queued" false
    (granted (Lock_table.acquire t ~owner:2 ~resource:3 ~mode:Mode.X ~on_grant:noop));
  checkb "later S queued too" false
    (granted (Lock_table.acquire t ~owner:3 ~resource:3 ~mode:Mode.S ~on_grant:noop));
  Alcotest.check (Alcotest.list Alcotest.int) "S blocked by X ahead" [ 2 ]
    (Lock_table.blockers t ~owner:3)

let test_reentrant_and_upgrade () =
  let t = Lock_table.create () in
  ignore (Lock_table.acquire t ~owner:1 ~resource:1 ~mode:Mode.X ~on_grant:noop);
  checkb "re-entrant X" true
    (granted (Lock_table.acquire t ~owner:1 ~resource:1 ~mode:Mode.X ~on_grant:noop));
  checkb "X covers S re-entrantly" true
    (granted (Lock_table.acquire t ~owner:1 ~resource:1 ~mode:Mode.S ~on_grant:noop));
  ignore (Lock_table.acquire t ~owner:2 ~resource:2 ~mode:Mode.S ~on_grant:noop);
  checkb "sole-holder upgrade granted" true
    (granted (Lock_table.acquire t ~owner:2 ~resource:2 ~mode:Mode.X ~on_grant:noop));
  checkb "upgraded to X" true (Lock_table.holds t ~owner:2 ~resource:2 = Some Mode.X)

let test_upgrade_waits_for_other_reader () =
  let t = Lock_table.create () in
  let upgraded = ref false in
  ignore (Lock_table.acquire t ~owner:1 ~resource:4 ~mode:Mode.S ~on_grant:noop);
  ignore (Lock_table.acquire t ~owner:2 ~resource:4 ~mode:Mode.S ~on_grant:noop);
  checkb "upgrade queued" false
    (granted
       (Lock_table.acquire t ~owner:1 ~resource:4 ~mode:Mode.X
          ~on_grant:(fun () -> upgraded := true)));
  Alcotest.check (Alcotest.list Alcotest.int) "blocked by other reader" [ 2 ]
    (Lock_table.blockers t ~owner:1);
  Lock_table.release_all t ~owner:2;
  checkb "upgrade completed on release" true !upgraded;
  checkb "now X" true (Lock_table.holds t ~owner:1 ~resource:4 = Some Mode.X)

let test_cancel_wait_unblocks () =
  let t = Lock_table.create () in
  let woken3 = ref false in
  ignore (Lock_table.acquire t ~owner:1 ~resource:9 ~mode:Mode.X ~on_grant:noop);
  ignore (Lock_table.acquire t ~owner:2 ~resource:9 ~mode:Mode.X ~on_grant:noop);
  ignore
    (Lock_table.acquire t ~owner:3 ~resource:9 ~mode:Mode.X
       ~on_grant:(fun () -> woken3 := true));
  Lock_table.cancel_wait t ~owner:2;
  checkb "2 no longer waiting" false (Lock_table.is_waiting t ~owner:2);
  Lock_table.release_all t ~owner:1;
  checkb "3 got the lock (2 skipped)" true !woken3

let test_release_all_multiple () =
  let t = Lock_table.create () in
  ignore (Lock_table.acquire t ~owner:1 ~resource:1 ~mode:Mode.X ~on_grant:noop);
  ignore (Lock_table.acquire t ~owner:1 ~resource:2 ~mode:Mode.X ~on_grant:noop);
  checki "two grants" 2 (Lock_table.grants_outstanding t);
  Alcotest.check (Alcotest.list Alcotest.int) "held" [ 1; 2 ]
    (Lock_table.held_resources t ~owner:1);
  Lock_table.release_all t ~owner:1;
  checki "no grants" 0 (Lock_table.grants_outstanding t);
  Alcotest.check (Alcotest.list Alcotest.int) "nothing held" []
    (Lock_table.held_resources t ~owner:1)

let test_double_wait_rejected () =
  let t = Lock_table.create () in
  ignore (Lock_table.acquire t ~owner:1 ~resource:1 ~mode:Mode.X ~on_grant:noop);
  ignore (Lock_table.acquire t ~owner:2 ~resource:1 ~mode:Mode.X ~on_grant:noop);
  Alcotest.check_raises "waiting owner cannot acquire"
    (Invalid_argument "Lock_table.acquire: owner is already waiting") (fun () ->
      ignore (Lock_table.acquire t ~owner:2 ~resource:2 ~mode:Mode.X ~on_grant:noop))

(* --- Waits-for --- *)

let graph edges node = List.filter_map (fun (a, b) -> if a = node then Some b else None) edges

let test_cycle_detection () =
  let cycle2 = graph [ (1, 2); (2, 1) ] in
  (match Waits_for.find_cycle ~successors:cycle2 ~start:1 with
  | Some [ 1; 2 ] -> ()
  | Some other ->
      Alcotest.failf "unexpected cycle [%s]"
        (String.concat ";" (List.map string_of_int other))
  | None -> Alcotest.fail "cycle missed");
  let chain = graph [ (1, 2); (2, 3) ] in
  checkb "no cycle in a chain" true
    (Waits_for.find_cycle ~successors:chain ~start:1 = None);
  let cycle3 = graph [ (1, 2); (2, 3); (3, 1) ] in
  (match Waits_for.find_cycle ~successors:cycle3 ~start:1 with
  | Some [ 1; 2; 3 ] -> ()
  | Some _ | None -> Alcotest.fail "three-cycle missed")

let test_cycle_not_through_start () =
  (* A pre-existing cycle that does not involve the start node is not the
     start's deadlock. *)
  let g = graph [ (1, 2); (2, 3); (3, 2) ] in
  checkb "foreign cycle ignored" true (Waits_for.find_cycle ~successors:g ~start:1 = None)

let test_reachable () =
  let g = graph [ (1, 2); (2, 3); (2, 4) ] in
  Alcotest.check (Alcotest.list Alcotest.int) "reachable set" [ 2; 3; 4 ]
    (Waits_for.reachable ~successors:g ~start:1)

(* --- Lock manager --- *)

let test_manager_deadlock () =
  let m = Lock_manager.create () in
  let is_granted = function
    | Lock_manager.Granted -> true
    | Lock_manager.Waiting | Lock_manager.Deadlock _ -> false
  in
  checkb "1 gets A" true
    (is_granted (Lock_manager.request m ~owner:1 ~resource:1 ~mode:Mode.X ~on_grant:noop));
  checkb "2 gets B" true
    (is_granted (Lock_manager.request m ~owner:2 ~resource:2 ~mode:Mode.X ~on_grant:noop));
  (match Lock_manager.request m ~owner:1 ~resource:2 ~mode:Mode.X ~on_grant:noop with
  | Lock_manager.Waiting -> ()
  | Lock_manager.Granted | Lock_manager.Deadlock _ -> Alcotest.fail "1 should wait");
  (match Lock_manager.request m ~owner:2 ~resource:1 ~mode:Mode.X ~on_grant:noop with
  | Lock_manager.Deadlock cycle ->
      checkb "cycle starts at requester" true (List.hd cycle = 2);
      checkb "cycle contains 1" true (List.mem 1 cycle)
  | Lock_manager.Granted | Lock_manager.Waiting -> Alcotest.fail "deadlock missed");
  checki "one deadlock" 1 (Lock_manager.deadlocks m);
  checki "two waits" 2 (Lock_manager.waits m);
  (* The victim (2) aborts and releases; that grants 1's queued request. *)
  Lock_manager.release_all m ~owner:2;
  checkb "1 unblocked by victim's release" false
    (Lock_table.is_waiting (Lock_manager.table m) ~owner:1);
  checkb "1 now holds B" true
    (Lock_table.holds (Lock_manager.table m) ~owner:1 ~resource:2 = Some Mode.X)

let test_manager_three_way_cycle () =
  let m = Lock_manager.create () in
  ignore (Lock_manager.request m ~owner:1 ~resource:1 ~mode:Mode.X ~on_grant:noop);
  ignore (Lock_manager.request m ~owner:2 ~resource:2 ~mode:Mode.X ~on_grant:noop);
  ignore (Lock_manager.request m ~owner:3 ~resource:3 ~mode:Mode.X ~on_grant:noop);
  ignore (Lock_manager.request m ~owner:1 ~resource:2 ~mode:Mode.X ~on_grant:noop);
  ignore (Lock_manager.request m ~owner:2 ~resource:3 ~mode:Mode.X ~on_grant:noop);
  (match Lock_manager.request m ~owner:3 ~resource:1 ~mode:Mode.X ~on_grant:noop with
  | Lock_manager.Deadlock cycle -> checki "cycle length 3" 3 (List.length cycle)
  | Lock_manager.Granted | Lock_manager.Waiting -> Alcotest.fail "3-cycle missed")

let test_manager_reset_counters () =
  let m = Lock_manager.create () in
  ignore (Lock_manager.request m ~owner:1 ~resource:1 ~mode:Mode.X ~on_grant:noop);
  ignore (Lock_manager.request m ~owner:2 ~resource:1 ~mode:Mode.X ~on_grant:noop);
  checki "one wait" 1 (Lock_manager.waits m);
  Lock_manager.reset_counters m;
  checki "reset" 0 (Lock_manager.waits m)

(* Property: random grant/release traffic never leaves conflicting grants. *)
let lock_table_safety_prop =
  QCheck.Test.make ~name:"lock table: never grants X/X on one resource" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 60)
              (pair (int_range 0 5) (int_range 0 3)))
    (fun script ->
      let t = Lock_table.create () in
      let holders : (int, int list) Hashtbl.t = Hashtbl.create 8 in
      let add_holder resource owner =
        let current = Option.value ~default:[] (Hashtbl.find_opt holders resource) in
        Hashtbl.replace holders resource (owner :: current)
      in
      let ok = ref true in
      List.iter
        (fun (owner, resource) ->
          if Lock_table.is_waiting t ~owner then Lock_table.release_all t ~owner
          else
            match
              Lock_table.acquire t ~owner ~resource ~mode:Mode.X
                ~on_grant:(fun () -> add_holder resource owner)
            with
            | Lock_table.Granted -> add_holder resource owner
            | Lock_table.Queued -> ())
        script;
      (* Check via the table's own view: each resource has at most one X
         holder. *)
      for resource = 0 to 3 do
        let x_holders = ref 0 in
        for owner = 0 to 5 do
          match Lock_table.holds t ~owner ~resource with
          | Some Mode.X -> incr x_holders
          | Some Mode.S | None -> ()
        done;
        if !x_holders > 1 then ok := false
      done;
      !ok)

(* --- Model-based properties ---

   A naive association-list lock table (the seed implementation's
   semantics, kept deliberately dumb) drives the same random traffic as
   the array-backed table; every observable — outcomes, grant order,
   blocker sets, held modes, waiting state, grant counts — must agree at
   every step. *)

module Model = struct
  type waiter = { owner : int; mode : Mode.t }

  type lock = {
    mutable granted : (int * Mode.t) list;
    mutable queue : waiter list; (* front first *)
  }

  type t = (int, lock) Hashtbl.t

  let create () : t = Hashtbl.create 8

  let lock_for (t : t) resource =
    match Hashtbl.find_opt t resource with
    | Some lock -> lock
    | None ->
        let lock = { granted = []; queue = [] } in
        Hashtbl.add t resource lock;
        lock

  let waiting_on (t : t) ~owner =
    Hashtbl.fold
      (fun resource lock acc ->
        if List.exists (fun w -> w.owner = owner) lock.queue then
          Some (resource, lock)
        else acc)
      t None

  let is_waiting t ~owner = waiting_on t ~owner <> None

  let holds (t : t) ~owner ~resource =
    match Hashtbl.find_opt t resource with
    | None -> None
    | Some lock -> List.assoc_opt owner lock.granted

  let grants_outstanding (t : t) =
    Hashtbl.fold (fun _ lock acc -> acc + List.length lock.granted) t 0

  (* FIFO pump; returns the owners granted, front of the queue first. *)
  let pump lock =
    let grantable w =
      List.for_all
        (fun (o, g) -> o = w.owner || Mode.compatible g w.mode)
        lock.granted
    in
    let rec loop acc =
      match lock.queue with
      | w :: rest when grantable w ->
          lock.queue <- rest;
          (if List.mem_assoc w.owner lock.granted then
             lock.granted <-
               List.map
                 (fun (o, g) -> if o = w.owner then (o, w.mode) else (o, g))
                 lock.granted
           else lock.granted <- lock.granted @ [ (w.owner, w.mode) ]);
          loop (w.owner :: acc)
      | _ -> List.rev acc
    in
    loop []

  let acquire t ~owner ~resource ~mode =
    let lock = lock_for t resource in
    match List.assoc_opt owner lock.granted with
    | Some held when Mode.covers ~held ~requested:mode -> Lock_table.Granted
    | Some _ ->
        if List.for_all (fun (o, _) -> o = owner) lock.granted then begin
          lock.granted <- List.map (fun (o, _) -> (o, Mode.X)) lock.granted;
          Lock_table.Granted
        end
        else begin
          (* upgrades wait at the front *)
          lock.queue <- { owner; mode } :: lock.queue;
          Lock_table.Queued
        end
    | None ->
        if
          lock.queue = []
          && List.for_all (fun (_, g) -> Mode.compatible g mode) lock.granted
        then begin
          lock.granted <- lock.granted @ [ (owner, mode) ];
          Lock_table.Granted
        end
        else begin
          lock.queue <- lock.queue @ [ { owner; mode } ];
          Lock_table.Queued
        end

  let blockers t ~owner =
    match waiting_on t ~owner with
    | None -> []
    | Some (_, lock) ->
        let rec split ahead = function
          | [] -> (List.rev ahead, Mode.X)
          | w :: _ when w.owner = owner -> (List.rev ahead, w.mode)
          | w :: rest -> split (w :: ahead) rest
        in
        let ahead, my_mode = split [] lock.queue in
        let holders =
          List.filter_map
            (fun (o, g) ->
              if o <> owner && not (Mode.compatible g my_mode) then Some o
              else None)
            lock.granted
        in
        let queued =
          List.filter_map
            (fun w ->
              if not (Mode.compatible w.mode my_mode) then Some w.owner
              else None)
            ahead
        in
        List.sort_uniq Int.compare (holders @ queued)

  (* Both return the grants fired, as (owner, resource) in callback
     order. *)
  let cancel_wait t ~owner =
    match waiting_on t ~owner with
    | None -> []
    | Some (resource, lock) ->
        lock.queue <- List.filter (fun w -> w.owner <> owner) lock.queue;
        List.map (fun o -> (o, resource)) (pump lock)

  let release_all t ~owner =
    let from_cancel = cancel_wait t ~owner in
    let held =
      Hashtbl.fold
        (fun resource lock acc ->
          if List.mem_assoc owner lock.granted then resource :: acc else acc)
        t []
      |> List.sort Int.compare
    in
    from_cancel
    @ List.concat_map
        (fun resource ->
          let lock = Hashtbl.find t resource in
          lock.granted <- List.remove_assoc owner lock.granted;
          List.map (fun o -> (o, resource)) (pump lock))
        held
end

let owners = 5
let resources = 4

type script_op =
  | Op_acquire of int * int * Mode.t
  | Op_cancel of int
  | Op_release of int

let op_gen =
  QCheck.Gen.(
    frequency
      [
        ( 5,
          map3
            (fun owner resource x ->
              Op_acquire (owner, resource, if x then Mode.X else Mode.S))
            (int_range 0 (owners - 1))
            (int_range 0 (resources - 1))
            bool );
        (1, map (fun o -> Op_cancel o) (int_range 0 (owners - 1)));
        (2, map (fun o -> Op_release o) (int_range 0 (owners - 1)));
      ])

let op_print = function
  | Op_acquire (o, r, m) ->
      Printf.sprintf "acquire(%d,%d,%s)" o r
        (match m with Mode.X -> "X" | Mode.S -> "S")
  | Op_cancel o -> Printf.sprintf "cancel(%d)" o
  | Op_release o -> Printf.sprintf "release(%d)" o

let script_arb =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map op_print ops))
    QCheck.Gen.(list_size (int_range 1 80) op_gen)

let ilist = Alcotest.list Alcotest.int

let lock_table_model_prop =
  QCheck.Test.make
    ~name:"lock table: agrees with the naive reference model" ~count:300
    script_arb
    (fun script ->
      let real = Lock_table.create () in
      let model = Model.create () in
      let real_grants = ref [] in
      let on_grant owner resource () =
        real_grants := (owner, resource) :: !real_grants
      in
      let model_grants = ref [] in
      let record_model granted =
        List.iter (fun grant -> model_grants := grant :: !model_grants) granted
      in
      let check_agreement () =
        Alcotest.check
          (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
          "grant order" (List.rev !model_grants) (List.rev !real_grants);
        checki "grants outstanding" (Model.grants_outstanding model)
          (Lock_table.grants_outstanding real);
        for owner = 0 to owners - 1 do
          checkb "is_waiting"
            (Model.is_waiting model ~owner)
            (Lock_table.is_waiting real ~owner);
          Alcotest.check ilist "blockers" (Model.blockers model ~owner)
            (Lock_table.blockers real ~owner);
          Alcotest.check ilist "blockers_fresh agrees with memo"
            (Lock_table.blockers real ~owner)
            (Lock_table.blockers_fresh real ~owner);
          for resource = 0 to resources - 1 do
            checkb "holds"
              (Model.holds model ~owner ~resource
              = Some Mode.X)
              (Lock_table.holds real ~owner ~resource = Some Mode.X);
            checkb "holds S"
              (Model.holds model ~owner ~resource = Some Mode.S)
              (Lock_table.holds real ~owner ~resource = Some Mode.S)
          done
        done
      in
      List.iter
        (fun op ->
          (match op with
          | Op_acquire (owner, resource, mode) ->
              (* both sides forbid acquiring while waiting; skip those *)
              if not (Model.is_waiting model ~owner) then begin
                let model_outcome =
                  Model.acquire model ~owner ~resource ~mode
                in
                (* a queue-front upgrade can become grantable only via
                   later releases, so pumping here grants nothing; the
                   real table relies on the same fact *)
                let real_outcome =
                  Lock_table.acquire real ~owner ~resource ~mode
                    ~on_grant:(on_grant owner resource)
                in
                checkb "acquire outcome"
                  (model_outcome = Lock_table.Granted)
                  (real_outcome = Lock_table.Granted)
              end
          | Op_cancel owner ->
              record_model (Model.cancel_wait model ~owner);
              Lock_table.cancel_wait real ~owner
          | Op_release owner ->
              (* grants come back in (cancel pump, then resources
                 ascending) order — the order the real table fires
                 callbacks in *)
              record_model (Model.release_all model ~owner);
              Lock_table.release_all real ~owner);
          check_agreement ())
        script;
      true)

let lock_manager_incremental_prop =
  QCheck.Test.make
    ~name:"lock manager: incremental cycles match the reference DFS"
    ~count:200 script_arb
    (fun script ->
      (* [debug_check] makes the manager itself fail on any divergence
         between the incremental detector and Waits_for.find_cycle over
         freshly recomputed blockers. *)
      let m = Lock_manager.create ~debug_check:true () in
      List.iter
        (fun op ->
          match op with
          | Op_acquire (owner, resource, mode) ->
              if
                not (Lock_table.is_waiting (Lock_manager.table m) ~owner)
              then begin
                match
                  Lock_manager.request m ~owner ~resource ~mode
                    ~on_grant:noop
                with
                | Lock_manager.Deadlock cycle ->
                    checkb "victim heads its cycle" true
                      (List.hd cycle = owner);
                    Lock_manager.release_all m ~owner
                | Lock_manager.Granted | Lock_manager.Waiting -> ()
              end
          | Op_cancel owner ->
              Lock_table.cancel_wait (Lock_manager.table m) ~owner
          | Op_release owner -> Lock_manager.release_all m ~owner)
        script;
      true)

let suite =
  [
    Alcotest.test_case "modes" `Quick test_mode;
    Alcotest.test_case "grant and conflict" `Quick test_grant_and_conflict;
    Alcotest.test_case "shared grants" `Quick test_shared_grants;
    Alcotest.test_case "release wakes FIFO" `Quick test_release_wakes_fifo;
    Alcotest.test_case "strict FIFO no overtake" `Quick test_strict_fifo_no_overtake;
    Alcotest.test_case "re-entrant and upgrade" `Quick test_reentrant_and_upgrade;
    Alcotest.test_case "upgrade waits for reader" `Quick test_upgrade_waits_for_other_reader;
    Alcotest.test_case "cancel wait unblocks" `Quick test_cancel_wait_unblocks;
    Alcotest.test_case "release all multiple" `Quick test_release_all_multiple;
    Alcotest.test_case "double wait rejected" `Quick test_double_wait_rejected;
    Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
    Alcotest.test_case "foreign cycle ignored" `Quick test_cycle_not_through_start;
    Alcotest.test_case "reachable" `Quick test_reachable;
    Alcotest.test_case "manager two-way deadlock" `Quick test_manager_deadlock;
    Alcotest.test_case "manager three-way cycle" `Quick test_manager_three_way_cycle;
    Alcotest.test_case "manager reset counters" `Quick test_manager_reset_counters;
    QCheck_alcotest.to_alcotest lock_table_safety_prop;
    QCheck_alcotest.to_alcotest lock_table_model_prop;
    QCheck_alcotest.to_alcotest lock_manager_incremental_prop;
  ]
