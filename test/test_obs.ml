(* The observability layer: metrics registry, profiling, warn-once counters,
   and the guarantee that observing a run does not change its results. *)

module Json = Dangers_obs.Json
module Metrics = Dangers_obs.Metrics
module Profiling = Dangers_obs.Profiling
module Warnings = Dangers_obs.Warnings
module Observe = Dangers_sim.Observe
module Trace = Dangers_sim.Trace
module Scheme = Dangers_experiments.Scheme
module Params = Dangers_analytic.Params

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string

let test_counters_and_gauges () =
  let t = Metrics.create () in
  let c = Metrics.counter t "hits" in
  Metrics.incr c;
  Metrics.add c 4;
  checki "counter value" 5 (Metrics.counter_value c);
  let c' = Metrics.counter t "hits" in
  Metrics.incr c';
  checki "interned handle" 6 (Metrics.counter_value c);
  let g = Metrics.gauge t "depth" in
  Metrics.set_gauge g 2.;
  Metrics.max_gauge g 7.;
  Metrics.max_gauge g 3.;
  Alcotest.check (Alcotest.float 0.) "max gauge" 7. (Metrics.gauge_value g);
  let s = Metrics.snapshot t in
  checki "snapshot counter" 6
    (Option.get (Metrics.snapshot_counter s "hits"));
  Alcotest.check (Alcotest.float 0.) "snapshot gauge" 7.
    (Option.get (Metrics.snapshot_gauge s "depth"))

let test_histogram_buckets () =
  let t = Metrics.create () in
  let h = Metrics.histogram ~buckets:[| 1.; 2.; 4. |] t "lat" in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 3.9; 100. ];
  let s = Metrics.snapshot t in
  let hs = Option.get (Metrics.snapshot_histogram s "lat") in
  checki "total count" 5 hs.Metrics.hs_count;
  Alcotest.check
    (Alcotest.array Alcotest.int)
    "bucket counts (<=1, <=2, <=4, overflow)" [| 2; 1; 1; 1 |]
    hs.Metrics.hs_counts;
  Alcotest.check_raises "bad buckets"
    (Invalid_argument "Metrics.histogram: buckets must increase strictly")
    (fun () -> ignore (Metrics.histogram ~buckets:[| 1.; 1. |] t "bad"))

let test_sources_merge () =
  let t = Metrics.create () in
  (* Two sources reporting the same counter accumulate; gauges keep max. *)
  Metrics.register_source t (fun () ->
      [ Metrics.Count ("waits", 3); Metrics.Gauge ("hw", 5.) ]);
  Metrics.register_source t (fun () ->
      [ Metrics.Count ("waits", 4); Metrics.Gauge ("hw", 2.) ]);
  let c = Metrics.counter t "waits" in
  Metrics.add c 10;
  let s = Metrics.snapshot t in
  checki "push + pull accumulate" 17
    (Option.get (Metrics.snapshot_counter s "waits"));
  Alcotest.check (Alcotest.float 0.) "gauge max across sources" 5.
    (Option.get (Metrics.snapshot_gauge s "hw"))

let test_snapshot_json_roundtrip () =
  let t = Metrics.create () in
  Metrics.add (Metrics.counter t "a") 3;
  Metrics.set_gauge (Metrics.gauge t "g") 1.25;
  Metrics.observe (Metrics.histogram ~buckets:[| 0.5; 1.5 |] t "h") 1.;
  Metrics.record_phase t
    {
      Profiling.phase = "demo";
      wall_seconds = 0.25;
      minor_words = 10.;
      major_words = 2.;
      promoted_words = 1.;
    };
  let s = Metrics.snapshot t in
  let s' = Metrics.snapshot_of_json (Metrics.snapshot_to_json s) in
  checkb "round-trips" true (s = s');
  Alcotest.check_raises "schema checked"
    (Json.Parse_error "unsupported metrics schema \"nope\"") (fun () ->
      ignore
        (Metrics.snapshot_of_json
           (Json.Obj [ ("schema", Json.Str "nope") ])))

let test_warnings_warn_once () =
  Warnings.reset ();
  checki "starts at zero" 0 (Warnings.total ());
  for _ = 1 to 3 do
    Warnings.warn ~key:"test.once" "something odd"
  done;
  Warnings.warn ~key:"test.other" "another thing";
  checki "every hit counted" 4 (Warnings.total ());
  checki "per key" 3 (Warnings.count ~key:"test.once");
  checki "other key" 1 (Warnings.count ~key:"test.other");
  let t = Metrics.create () in
  let s = Metrics.snapshot t in
  checki "surfaced in snapshots" 4 s.Metrics.s_warnings_total;
  Warnings.reset ();
  checki "reset" 0 (Warnings.total ())

let test_profiling_timed () =
  let result, p =
    Profiling.timed "work" (fun () ->
        (* allocate something measurable, fenced from the optimizer *)
        List.length (Sys.opaque_identity (List.init 10_000 (fun i -> i))))
  in
  checki "result passed through" 10_000 result;
  checks "phase name" "work" p.Profiling.phase;
  checkb "wall clock non-negative" true (p.Profiling.wall_seconds >= 0.);
  checkb "allocated" true (Profiling.allocated_words p > 0.);
  let p' = Profiling.of_json (Profiling.to_json p) in
  checkb "json round-trips" true (p = p')

(* Observing must not perturb the simulation: same spec + seed give the
   same summary and diagnostics with and without a registry + tracer
   attached. This is the CLI's byte-identical promise. *)
let test_observed_runs_identical () =
  let params = { Params.default with Params.nodes = 3 } in
  let spec = Scheme.spec params in
  List.iter
    (fun scheme ->
      let plain =
        Scheme.run_outcome scheme spec ~seed:42 ~warmup:1. ~span:5.
      in
      let registry = Metrics.create () in
      let tracer = Trace.create () in
      let observed =
        Observe.with_observation ~obs:registry ~tracer (fun () ->
            Scheme.run_outcome scheme spec ~seed:42 ~warmup:1. ~span:5.)
      in
      checkb
        (Scheme.name scheme ^ " summary identical when observed")
        true
        (plain.Scheme.summary = observed.Scheme.summary
        && plain.Scheme.diagnostics = observed.Scheme.diagnostics);
      (* And the observation actually saw the run. *)
      let s = Metrics.snapshot registry in
      checkb
        (Scheme.name scheme ^ " engine events observed")
        true
        (match Metrics.snapshot_counter s "engine.events_fired_total" with
        | Some n -> n > 0
        | None -> false))
    Scheme.all

let test_scheme_find_underscores () =
  checkb "underscore spelling" true
    (match Scheme.find "eager_group" with
    | Some s -> String.equal (Scheme.name s) "eager-group"
    | None -> false);
  checkb "case folded too" true
    (match Scheme.find "Two_Tier" with
    | Some s -> String.equal (Scheme.name s) "two-tier"
    | None -> false)

let suite =
  [
    Alcotest.test_case "counters and gauges" `Quick test_counters_and_gauges;
    Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
    Alcotest.test_case "sources merge" `Quick test_sources_merge;
    Alcotest.test_case "snapshot json round-trip" `Quick
      test_snapshot_json_roundtrip;
    Alcotest.test_case "warnings warn once" `Quick test_warnings_warn_once;
    Alcotest.test_case "profiling timed" `Quick test_profiling_timed;
    Alcotest.test_case "observed runs identical" `Slow
      test_observed_runs_identical;
    Alcotest.test_case "scheme find underscores" `Quick
      test_scheme_find_underscores;
  ]
