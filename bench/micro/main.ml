(* Standalone micro-benchmark runner: `dune exec bench/micro/main.exe`
   (optionally with --quick) runs the full suite and writes
   BENCH_micro.json. The `dangers bench` subcommand is the same driver
   with comparison flags on top. *)

let () =
  let quick = Array.exists (String.equal "--quick") Sys.argv in
  exit
    (Dangers_microbench.Driver.main ~quick ~out:(Some "BENCH_micro.json")
       ~input:None ~baseline:None ~threshold:0.2 ())
