(* Benchmark harness.

   Part 1 regenerates every paper table and figure at full fidelity (the
   same output as `dangers experiment`): analytic prediction next to the
   simulator's measurement, plus the pass/fail findings EXPERIMENTS.md
   records.

   Part 2 is a Bechamel micro-benchmark suite: one Test.make per paper
   table/figure (benchmarking the quick-mode regeneration of that
   artifact), plus component benchmarks for the substrates the simulator
   is built from.

   Part 3 times the multicore sweep runner: the quick-mode experiment
   registry serially and at the machine's recommended domain count, checks
   the exports are byte-identical, and writes the numbers to
   BENCH_sweep.json for tooling to pick up.

   Flags: --bench-only skips part 1, --tables-only skips parts 2 and 3,
   --sweep-only runs only part 3. *)

open Bechamel
open Toolkit

module Experiment = Dangers_experiments.Experiment
module Registry = Dangers_experiments.Registry
module Rng = Dangers_util.Rng
module Heap = Dangers_sim.Heap
module Engine = Dangers_sim.Engine
module Oid = Dangers_storage.Oid
module Timestamp = Dangers_storage.Timestamp
module Fstore = Dangers_storage.Store.Fstore
module Version_vector = Dangers_storage.Version_vector
module Mode = Dangers_lock.Mode
module Lock_manager = Dangers_lock.Lock_manager
module Params = Dangers_analytic.Params
module Model = Dangers_analytic.Model
module Profile = Dangers_workload.Profile

(* --- Part 1: regenerate the paper --- *)

let regenerate_all () =
  print_endline
    "======================================================================";
  print_endline
    " Part 1: paper reproduction - every table and figure, model vs system";
  print_endline
    "======================================================================";
  let total_ok = ref 0 and total = ref 0 in
  List.iter
    (fun e ->
      let result = e.Experiment.run ~quick:false ~seed:42 in
      Format.printf "%a@." Experiment.pp_result result;
      List.iter
        (fun f ->
          incr total;
          if Experiment.finding_ok f then incr total_ok)
        result.Experiment.findings)
    Registry.all;
  Printf.printf "findings reproduced: %d / %d\n%!" !total_ok !total

(* --- Part 2: micro-benchmarks --- *)

let experiment_tests =
  List.map
    (fun e ->
      Test.make
        ~name:(Printf.sprintf "experiment/%s" e.Experiment.id)
        (Staged.stage (fun () ->
             ignore (e.Experiment.run ~quick:true ~seed:1))))
    Registry.all

let component_tests =
  let rng = Rng.create ~seed:1 in
  [
    Test.make ~name:"component/rng-bits64"
      (Staged.stage (fun () -> ignore (Rng.bits64 rng)));
    Test.make ~name:"component/heap-push-pop-1k"
      (Staged.stage (fun () ->
           let h = Heap.create ~cmp:Int.compare () in
           for i = 999 downto 0 do
             Heap.push h i
           done;
           while not (Heap.is_empty h) do
             ignore (Heap.pop h)
           done));
    Test.make ~name:"component/engine-1k-events"
      (Staged.stage (fun () ->
           let engine = Engine.create () in
           for i = 1 to 1000 do
             ignore (Engine.schedule engine ~delay:(float_of_int i) ignore)
           done;
           Engine.run engine));
    Test.make ~name:"component/lock-100-acquire-release"
      (Staged.stage (fun () ->
           let m = Lock_manager.create () in
           for owner = 0 to 9 do
             for i = 0 to 9 do
               ignore
                 (Lock_manager.request m ~owner ~resource:((owner * 10) + i)
                    ~mode:Mode.X ~on_grant:ignore)
             done
           done;
           for owner = 0 to 9 do
             Lock_manager.release_all m ~owner
           done));
    Test.make ~name:"component/store-1k-write-read"
      (Staged.stage
         (let store = Fstore.create ~db_size:1000 ~init:(fun _ -> 0.) in
          let stamp = { Timestamp.counter = 1; node = 0 } in
          fun () ->
            for i = 0 to 999 do
              Fstore.write store (Oid.of_int i) (float_of_int i) stamp;
              ignore (Fstore.read store (Oid.of_int i))
            done));
    Test.make ~name:"component/version-vector-merge"
      (Staged.stage
         (let a = Version_vector.of_list [ (0, 5); (1, 3); (2, 9) ] in
          let b = Version_vector.of_list [ (0, 2); (1, 7); (3, 1) ] in
          fun () -> ignore (Version_vector.merge a b)));
    Test.make ~name:"component/analytic-predict-all"
      (Staged.stage (fun () ->
           List.iter
             (fun scheme -> ignore (Model.predict scheme Params.default))
             Model.all_schemes));
    Test.make ~name:"component/workload-generate-txn"
      (Staged.stage
         (let profile = Profile.create ~actions:4 () in
          fun () -> ignore (Profile.generate profile rng ~db_size:1000)));
  ]

(* Simulator throughput: how much wall-clock it costs to simulate 5 seconds
   of each scheme at a common parameter point. *)
let scheme_tests =
  let module Params = Dangers_analytic.Params in
  let module Scheme = Dangers_experiments.Scheme in
  let params =
    { Params.default with db_size = 400; nodes = 3; tps = 5.; actions = 4 }
  in
  let spec = Scheme.spec ~base_nodes:1 params in
  List.map
    (fun scheme ->
      Test.make
        ~name:("scheme/" ^ Scheme.name scheme ^ "-5-sim-seconds")
        (Staged.stage (fun () ->
             ignore (Scheme.run scheme spec ~seed:1 ~warmup:0. ~span:5.))))
    Scheme.all

let run_benchmarks () =
  print_endline "";
  print_endline
    "======================================================================";
  print_endline " Part 2: Bechamel micro-benchmarks";
  print_endline
    "======================================================================";
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None
      ~stabilize:false ()
  in
  let tests = component_tests @ scheme_tests @ experiment_tests in
  Printf.printf "%-40s %15s %10s\n" "benchmark" "time/run" "r^2";
  Printf.printf "%s\n" (String.make 67 '-');
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let benchmark = Benchmark.run cfg instances elt in
          let result = Analyze.one ols Instance.monotonic_clock benchmark in
          let estimate =
            match Analyze.OLS.estimates result with
            | Some [ x ] -> x
            | Some _ | None -> Float.nan
          in
          let r2 =
            match Analyze.OLS.r_square result with
            | Some r -> r
            | None -> Float.nan
          in
          let human ns =
            if ns < 1e3 then Printf.sprintf "%.1f ns" ns
            else if ns < 1e6 then Printf.sprintf "%.2f us" (ns /. 1e3)
            else if ns < 1e9 then Printf.sprintf "%.2f ms" (ns /. 1e6)
            else Printf.sprintf "%.2f s" (ns /. 1e9)
          in
          Printf.printf "%-40s %15s %10.4f\n%!" (Test.Elt.name elt)
            (human estimate) r2)
        (Test.elements test))
    tests

(* --- Part 3: multicore sweep runner --- *)

let bench_sweep () =
  let module Sweep = Dangers_runner.Sweep in
  let module Export = Dangers_runner.Export in
  let module Task_pool = Dangers_runner.Task_pool in
  print_endline "";
  print_endline
    "======================================================================";
  print_endline " Part 3: sweep runner - serial vs multicore, identical output";
  print_endline
    "======================================================================";
  let tasks = Sweep.experiment_tasks ~quick:true Registry.all ~seeds:[ 42 ] in
  let timed jobs =
    let t0 = Unix.gettimeofday () in
    let items = Sweep.run ~jobs tasks in
    let dt = Unix.gettimeofday () -. t0 in
    (dt, Export.to_jsonl (List.map Export.record_of_item items))
  in
  let host_cores = Task_pool.host_cores () in
  let jobs = Task_pool.default_jobs () in
  let serial_seconds, serial_out = timed 1 in
  let parallel_seconds, parallel_out = timed jobs in
  let identical = String.equal serial_out parallel_out in
  let speedup = serial_seconds /. parallel_seconds in
  (* An observed pass over the same tasks: per-task wall-clock and
     allocation profiles for the report, and a cross-check that observing
     does not change results. *)
  let observed = Sweep.run_observed ~jobs tasks in
  let observed_out =
    Export.to_jsonl (List.map (fun (item, _) -> Export.record_of_item item) observed)
  in
  let observed_identical = String.equal serial_out observed_out in
  let task_profiles =
    Export.Arr
      (List.map
         (fun (_, o) ->
           match Dangers_obs.Profiling.to_json o.Sweep.o_profile with
           | Export.Obj fields ->
               Export.Obj
                 (fields @ [ ("seed", Export.Num (float_of_int o.Sweep.o_seed)) ])
           | j -> j)
         observed)
  in
  let json =
    Export.(
      json_to_string
        (Obj
           [
             ("benchmark", Str "sweep-quick-experiment-registry");
             ("tasks", Num (float_of_int (List.length tasks)));
             ("host_cores", Num (float_of_int host_cores));
             ("jobs", Num (float_of_int jobs));
             ("serial_seconds", json_of_float serial_seconds);
             ("parallel_seconds", json_of_float parallel_seconds);
             ("speedup", json_of_float speedup);
             ("identical", Bool identical);
             ("observed_identical", Bool observed_identical);
             ("task_profiles", task_profiles);
           ]))
  in
  let oc = open_out "BENCH_sweep.json" in
  output_string oc (json ^ "\n");
  close_out oc;
  Printf.printf
    "%d tasks: %.2fs at --jobs 1, %.2fs at --jobs %d (%.2fx), outputs %s\n\
     wrote BENCH_sweep.json\n\
     %!"
    (List.length tasks) serial_seconds parallel_seconds jobs speedup
    (if identical then "byte-identical" else "DIFFER");
  if not identical then exit 1

let () =
  let bench_only = Array.exists (String.equal "--bench-only") Sys.argv in
  let tables_only = Array.exists (String.equal "--tables-only") Sys.argv in
  let sweep_only = Array.exists (String.equal "--sweep-only") Sys.argv in
  if (not bench_only) && not sweep_only then regenerate_all ();
  if (not tables_only) && not sweep_only then run_benchmarks ();
  if not tables_only then bench_sweep ()
