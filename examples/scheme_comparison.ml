(* One workload, all five replication strategies, side by side — the
   repository's version of the paper's bottom line. Prints the analytic
   prediction next to the measured rates for each scheme at the same
   parameter point.

   Run with: dune exec examples/scheme_comparison.exe [-- NODES] *)

module Params = Dangers_analytic.Params
module Model = Dangers_analytic.Model
module Table = Dangers_util.Table
module Repl_stats = Dangers_replication.Repl_stats
module Eager_impl = Dangers_replication.Eager_impl
module Scheme = Dangers_experiments.Scheme
module Connectivity = Dangers_net.Connectivity

let () =
  let nodes =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 4
  in
  let params =
    { Params.default with nodes; db_size = 400; tps = 5.; actions = 4 }
  in
  let seed = 7 and warmup = 5. and span = 120. in
  Format.printf "Workload: %a@.@." Params.pp params;
  let table =
    Table.create
      ~caption:"Model prediction vs 120s of simulation (rates per second)"
      [
        Table.column ~align:Table.Left "scheme";
        Table.column "commits/s";
        Table.column "waits/s (model)";
        Table.column "waits/s";
        Table.column "deadlocks/s (model)";
        Table.column "deadlocks/s";
        Table.column "reconciliations/s";
      ]
  in
  let add scheme summary =
    let p = Model.predict scheme params in
    Table.add_row table
      [
        Model.scheme_name scheme;
        Table.cell_float ~digits:1 summary.Repl_stats.commit_rate;
        Table.cell_rate p.Model.wait_rate;
        Table.cell_rate summary.Repl_stats.wait_rate;
        Table.cell_rate p.Model.deadlock_rate;
        Table.cell_rate summary.Repl_stats.deadlock_rate;
        Table.cell_rate summary.Repl_stats.reconciliation_rate;
      ]
  in
  let spec = Scheme.spec params in
  let run name = Scheme.run_named name spec ~seed ~warmup ~span in
  add Model.Eager_group (run "eager-group");
  add Model.Eager_master (run "eager-master");
  add Model.Lazy_group (run "lazy-group");
  add Model.Lazy_master (run "lazy-master");
  let two_tier =
    Scheme.run_outcome_named "two-tier"
      (Scheme.spec ~connectivity:Connectivity.base_node
         ~base_nodes:(max 1 (nodes / 2)) params)
      ~seed ~warmup ~span
  in
  add Model.Two_tier two_tier.Scheme.summary;
  Format.printf "%a@." Table.pp table;
  Format.printf
    "two-tier converged: %b (the model's reconciliation column for \
     lazy-group is equation 14; the measured column counts dangerous \
     timestamp chains)@."
    (Scheme.diagnostic two_tier "converged" = Some 1.)
