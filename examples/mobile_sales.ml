(* Disconnected salesmen quoting prices — the paper's acceptance-criterion
   example: "the price quote can not exceed the tentative quote".

   A base node holds the product catalog. Two salesmen travel with replicas,
   quote prices offline, and sync at night. Between their quotes head
   office raises some prices; quotes that the base re-execution would
   *increase* are rejected and returned to the salesman to renegotiate.

   A quote transaction assigns the negotiated price to the customer's
   order record; the acceptance criterion compares the re-executed result
   with the tentative one under [At_most_tentative].

   Run with: dune exec examples/mobile_sales.exe *)

module Params = Dangers_analytic.Params
module Clock = Dangers_runtime.Clock
module Oid = Dangers_storage.Oid
module Fstore = Dangers_storage.Store.Fstore
module Op = Dangers_txn.Op
module Connectivity = Dangers_net.Connectivity
module Common = Dangers_replication.Common
module Acceptance = Dangers_core.Acceptance
module Two_tier = Dangers_core.Two_tier

(* Object layout: order records 0..9, catalog prices 10..19. A quote writes
   the order record to catalog price minus the negotiated discount. *)
let order customer = Oid.of_int customer
let catalog product = Oid.of_int (10 + product)

let params = { Params.default with nodes = 3; db_size = 20; tps = 1.; actions = 1 }

let () =
  let sys =
    Two_tier.create ~initial_value:100.
      ~acceptance:Acceptance.At_most_tentative
      ~mobility:(Connectivity.day_cycle ~connected:5. ~disconnected:50_000.)
      ~base_nodes:1 params ~seed:11
  in
  let clock = (Two_tier.base sys).Common.clock in
  let base_store = (Two_tier.base sys).Common.stores.(0) in
  Printf.printf "catalog price of product 0: $%.2f\n"
    (Fstore.read base_store (catalog 0));

  (* Salesmen go on the road. *)
  Clock.run clock ~until:50_010.;

  (* A quote is a derived write: order := current catalog price - discount.
     The tentative run evaluates it against the salesman's (stale) replica;
     the base replay re-evaluates it against the live catalog. *)
  let quote ~salesman ~customer ~product ~discount =
    let replica =
      Dangers_core.Mobile_node.tentative_store (Two_tier.mobile sys ~node:salesman)
    in
    let promised = Fstore.read replica (catalog product) -. discount in
    Printf.printf "salesman %d quotes customer %d: $%.2f\n" salesman customer
      promised;
    Two_tier.submit sys ~node:salesman
      [
        Op.Assign_from
          { target = order customer; source = catalog product; offset = -.discount };
      ]
  in
  quote ~salesman:1 ~customer:0 ~product:0 ~discount:5.;
  quote ~salesman:2 ~customer:1 ~product:1 ~discount:2.;

  (* Meanwhile head office raises product 0's price, so re-executing
     salesman 1's quote would exceed what the customer was promised. *)
  Two_tier.run_base_transaction sys
    ~ops:[ Op.Assign (catalog 0, 150.) ]
    ~on_done:(fun _ -> ())
    ();

  (* Night: both salesmen sync. *)
  Two_tier.quiesce_and_sync sys;
  Printf.printf "quotes honoured: %d, quotes to renegotiate: %d\n"
    (Two_tier.tentative_accepted sys)
    (Two_tier.tentative_rejected sys);
  List.iter
    (fun (_, reason) -> Printf.printf "head office: %s\n" reason)
    (Two_tier.rejection_log sys);
  Printf.printf
    "order 0 on the master ledger: $%.2f (rejected quote left no trace)\n"
    (Fstore.read base_store (order 0));
  Printf.printf "order 1 on the master ledger: $%.2f (salesman 2's quote)\n"
    (Fstore.read base_store (order 1));
  Printf.printf "books converged: %b\n" (Two_tier.converged sys)
