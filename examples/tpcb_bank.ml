(* A TPC-B-style bank across replication schemes — the benchmark family the
   paper cites when arguing that database size should scale with the fleet
   (equation 13).

   Every transaction debits/credits an account and updates its teller and
   branch totals. Two things to watch:
   - increments commute, so the two-tier scheme accepts every tentative
     transaction and the additive lazy-group rule is exact;
   - the branch rows are a built-in hotspot: contention is set by the
     branch count, not the headline database size (experiment E18).

   Run with: dune exec examples/tpcb_bank.exe *)

module Scenario = Dangers_workload.Scenario
module Profile = Dangers_workload.Profile
module Params = Dangers_analytic.Params
module Oid = Dangers_storage.Oid
module Fstore = Dangers_storage.Store.Fstore
module Clock = Dangers_runtime.Clock
module Common = Dangers_replication.Common
module Repl_stats = Dangers_replication.Repl_stats
module Lazy_group = Dangers_replication.Lazy_group
module Reconcile = Dangers_replication.Reconcile
module Scheme = Dangers_experiments.Scheme
module Two_tier = Dangers_core.Two_tier

let () =
  let scenario = Scenario.tpcb in
  let params = scenario.Scenario.params in
  let profile = scenario.Scenario.profile in
  Format.printf "%s@.%a@.@." scenario.Scenario.description Params.pp params;

  (* 1. Conservation under the additive rule: the bank balances exactly. *)
  let sys =
    Lazy_group.create ~profile ~initial_value:scenario.Scenario.initial_value
      ~rule:Reconcile.Additive params ~seed:13
  in
  Lazy_group.start sys;
  Clock.run_for (Lazy_group.base sys).Common.clock 60.;
  Lazy_group.stop_load sys;
  Lazy_group.force_sync sys;
  let store = (Lazy_group.base sys).Common.stores.(0) in
  let worst =
    Fstore.fold store ~init:0. ~f:(fun acc oid value _ ->
        Float.max acc (Float.abs (value -. Lazy_group.expected_sum sys oid)))
  in
  Printf.printf
    "lazy-group + additive rule, 60s of traffic: worst ledger error %.6f \
     (increments commute)\n"
    worst;

  (* 2. The same bank on two-tier with branch tellers going offline. *)
  let tt_params =
    { params with nodes = 4; time_between_disconnects = 20.;
      disconnected_time = 40. }
  in
  let tt =
    Scheme.run_outcome_named "two-tier"
      (Scheme.spec ~profile ~initial_value:scenario.Scenario.initial_value
         ~base_nodes:2 tt_params)
      ~seed:13 ~warmup:5. ~span:120.
  in
  let diag key =
    match Scheme.diagnostic tt key with Some v -> int_of_float v | None -> 0
  in
  Printf.printf
    "two-tier, mobile tellers offline 2/3 of the time: %d base commits, %d \
     tentative, %d rejected, converged=%b, serializable=%b\n"
    tt.Scheme.summary.Repl_stats.commits
    (diag "tentative_commits")
    (diag "tentative_rejected")
    (diag "converged" = 1)
    (diag "base_serializable" = 1);

  (* 3. The hotspot in one line: waits with 10 branches vs 200. *)
  let waits branches =
    let hot_params =
      { params with nodes = 1;
        db_size = 10_000 + (branches * 10) + branches; tps = 40. }
    in
    let hot_profile =
      Profile.create ~update_kind:Profile.Increments
        ~access:(Profile.Tpcb { branches; tellers_per_branch = 10 })
        ~actions:3 ()
    in
    (Scheme.run_named "eager-group"
       (Scheme.spec ~profile:hot_profile hot_params)
       ~seed:13 ~warmup:5. ~span:60.)
      .Repl_stats.wait_rate
  in
  Printf.printf
    "branch hotspot at 40 TPS: %.2f waits/s with 10 branches vs %.2f with \
     200 - same 10k accounts, contention set by the hot region\n"
    (waits 10) (waits 200)
