(* Warehouse inventory on commutative updates — §6's point that
   "transactions can be designed to commute, so that the database ends up
   in the same state no matter what transaction execution order is chosen".

   Four warehouses adjust shared stock counters by increments (receipts and
   shipments). We run the same update stream through:
   - lazy-group with last-writer-wins reconciliation: deltas get lost;
   - lazy-group with the additive (commutative) rule: exact convergence;
   - two-tier with disconnected warehouses: zero rejects, exact sums.

   Run with: dune exec examples/inventory.exe *)

module Params = Dangers_analytic.Params
module Clock = Dangers_runtime.Clock
module Oid = Dangers_storage.Oid
module Fstore = Dangers_storage.Store.Fstore
module Profile = Dangers_workload.Profile
module Connectivity = Dangers_net.Connectivity
module Common = Dangers_replication.Common
module Reconcile = Dangers_replication.Reconcile
module Lazy_group = Dangers_replication.Lazy_group
module Two_tier = Dangers_core.Two_tier
module Commutative = Dangers_core.Commutative

let params =
  { Params.default with nodes = 4; db_size = 40; tps = 4.; actions = 2 }

let profile = Profile.create ~update_kind:Profile.Increments ~magnitude:10. ~actions:2 ()
let opening_stock = 1000.

let lazy_group_run ~rule ~seed =
  let sys =
    Lazy_group.create ~profile ~initial_value:opening_stock ~rule params ~seed
  in
  Lazy_group.start sys;
  Clock.run_for (Lazy_group.base sys).Common.clock 60.;
  Lazy_group.stop_load sys;
  Lazy_group.force_sync sys;
  let store = (Lazy_group.base sys).Common.stores.(0) in
  let worst, total =
    Fstore.fold store ~init:(0., 0.) ~f:(fun (worst, total) oid value _ ->
        let error = Float.abs (value -. Lazy_group.expected_sum sys oid) in
        (Float.max worst error, total +. error))
  in
  Printf.printf "  %-22s worst counter error: %7.1f, total error: %8.1f\n"
    (Reconcile.rule_name rule ^ ":") worst total

let two_tier_run ~seed =
  let sys =
    Two_tier.create ~profile ~initial_value:opening_stock ~base_nodes:2
      ~mobility:(Connectivity.day_cycle ~connected:10. ~disconnected:30.)
      params ~seed
  in
  Two_tier.start sys;
  Clock.run_for (Two_tier.base sys).Common.clock 120.;
  Two_tier.quiesce_and_sync sys;
  Printf.printf
    "  two-tier:              tentative=%d accepted=%d rejected=%d converged=%b\n"
    (Dangers_sim.Metrics.total_count (Two_tier.base sys).Common.metrics
       "tentative_commits")
    (Two_tier.tentative_accepted sys)
    (Two_tier.tentative_rejected sys)
    (Two_tier.converged sys)

let () =
  Printf.printf
    "Four warehouses adjusting %d stock counters with commutative \
     increments.\n\n"
    params.Params.db_size;
  (* The design rule, checked: every generated transaction commutes. *)
  let sample =
    List.init 10 (fun i ->
        Commutative.adjust_stock (Oid.of_int (i mod params.Params.db_size))
          (float_of_int (i - 5)))
  in
  Printf.printf "sample transactions pairwise commute: %b\n\n"
    (Commutative.pairwise_commute sample);
  Printf.printf "lazy-group, 60s of traffic, then full exchange:\n";
  lazy_group_run ~rule:Reconcile.Timestamp_priority ~seed:21;
  lazy_group_run ~rule:Reconcile.Additive ~seed:21;
  Printf.printf "\ntwo-tier, warehouses offline 3/4 of the time:\n";
  two_tier_run ~seed:22
