(* The paper's running example, replayed under three replication schemes.

   A joint checking account with $1000 is replicated in three places: your
   checkbook, your spouse's checkbook, and the bank's ledger. You and your
   spouse each try to spend $800.

   - Eager replication: the second withdrawal waits for the first and then
     sees the reduced balance — the overdraft never happens (we encode the
     overdraft guard in the transaction itself).
   - Lazy-group replication: both withdrawals commit locally; the replica
     updates collide and somebody must reconcile $600 of overdraft.
   - Two-tier replication: both withdrawals are tentative; the bank clears
     the first and bounces the second with a diagnostic, and all three
     books converge to the bank's state.

   Run with: dune exec examples/checkbook.exe *)

module Params = Dangers_analytic.Params
module Clock = Dangers_runtime.Clock
module Metrics = Dangers_sim.Metrics
module Oid = Dangers_storage.Oid
module Fstore = Dangers_storage.Store.Fstore
module Op = Dangers_txn.Op
module Connectivity = Dangers_net.Connectivity
module Common = Dangers_replication.Common
module Repl_stats = Dangers_replication.Repl_stats
module Eager_group = Dangers_replication.Eager_group
module Lazy_group = Dangers_replication.Lazy_group
module Acceptance = Dangers_core.Acceptance
module Commutative = Dangers_core.Commutative
module Two_tier = Dangers_core.Two_tier

let params = { Params.default with nodes = 3; db_size = 10; tps = 1.; actions = 1 }
let account = Oid.of_int 0
let opening = 1000.

let banner title = Printf.printf "\n--- %s ---\n" title

let eager_story () =
  banner "eager replication: the overdraft cannot happen";
  let sys = Eager_group.create ~initial_value:opening params ~seed:1 in
  let base = Eager_group.base sys in
  (* Both spouses spend at the same instant; the second transaction waits
     for the first one's locks, reads the reduced balance, and its guard
     turns the withdrawal into a rejection (balance unchanged). *)
  let spend node amount =
    Eager_group.submit sys ~node [ Op.Increment (account, -.amount) ]
  in
  spend 0 800.;
  spend 1 800.;
  Common.drain base;
  let balance = Fstore.read base.Common.stores.(2) account in
  Printf.printf "bank ledger after both withdrawals: $%.2f\n" balance;
  Printf.printf
    "all three books agree everywhere, always: the second spender was \
     serialized behind the first and read the reduced balance, so an \
     application overdraft check would have stopped the check before it \
     was written - the conflict surfaced as a lock wait, never as \
     inconsistent books\n";
  Printf.printf "waits observed: %d; books identical: %b\n"
    (Metrics.total_count base.Common.metrics Repl_stats.waits)
    (Fstore.content_equal base.Common.stores.(0) base.Common.stores.(2))

let lazy_story () =
  banner "lazy-group replication: the virtual $1000 is spent twice";
  let sys = Lazy_group.create ~initial_value:opening params ~seed:2 in
  let base = Lazy_group.base sys in
  (* Each spouse updates their local checkbook: both see $1000 and write
     $200. The replica updates race; reconciliation is needed. *)
  Lazy_group.submit sys ~node:0 [ Op.Assign (account, opening -. 800.) ];
  Lazy_group.submit sys ~node:1 [ Op.Assign (account, opening -. 800.) ];
  Common.drain base;
  let balance = Fstore.read base.Common.stores.(2) account in
  let reconciliations =
    Metrics.total_count base.Common.metrics Repl_stats.reconciliations
  in
  Printf.printf "bank ledger after convergence: $%.2f\n" balance;
  Printf.printf
    "reconciliations needed: %d  (two $800 checks were written against one \
     $1000 - $600 of spending is unaccounted for)\n"
    reconciliations

let two_tier_story () =
  banner "two-tier replication: tentative checks, the bank decides";
  let sys =
    Two_tier.create ~initial_value:opening ~acceptance:Acceptance.Non_negative
      ~mobility:(Connectivity.day_cycle ~connected:5. ~disconnected:10_000.)
      ~base_nodes:1 params ~seed:3
  in
  let clock = (Two_tier.base sys).Common.clock in
  Clock.run clock ~until:10_010.;
  (* Both checkbooks (mobile nodes 1 and 2) are now offline. *)
  Two_tier.submit sys ~node:1 (Commutative.debit account 800.);
  Two_tier.submit sys ~node:2 (Commutative.debit account 800.);
  Two_tier.quiesce_and_sync sys;
  let balance = Fstore.read (Two_tier.base sys).Common.stores.(0) account in
  Printf.printf "checks cleared: %d, bounced: %d\n"
    (Two_tier.tentative_accepted sys)
    (Two_tier.tentative_rejected sys);
  List.iter
    (fun (txn, reason) ->
      Printf.printf "bounced %s: %s\n"
        (Format.asprintf "%a" Dangers_core.Tentative.pp txn)
        reason)
    (Two_tier.rejection_log sys);
  Printf.printf "bank ledger: $%.2f; all books converged: %b\n" balance
    (Two_tier.converged sys)

let () =
  Printf.printf
    "A joint checking account with $%.0f, replicated at two checkbooks and \
     the bank.\n"
    opening;
  eager_story ();
  lazy_story ();
  two_tier_story ()
