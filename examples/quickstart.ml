(* Quickstart: the paper's joint checking account on two-tier replication.

   One base node (the bank) and one mobile node (your laptop's checkbook).
   The laptop disconnects, writes two tentative checks, reconnects; the
   bank replays them as base transactions under the "balance must not go
   negative" acceptance criterion. The first check clears; the second
   bounces and comes back with a diagnostic — and the bank's books stay
   consistent throughout.

   Run with: dune exec examples/quickstart.exe *)

module Params = Dangers_analytic.Params
module Clock = Dangers_runtime.Clock
module Oid = Dangers_storage.Oid
module Fstore = Dangers_storage.Store.Fstore
module Connectivity = Dangers_net.Connectivity
module Common = Dangers_replication.Common
module Acceptance = Dangers_core.Acceptance
module Commutative = Dangers_core.Commutative
module Two_tier = Dangers_core.Two_tier

let () =
  let params =
    { Params.default with nodes = 2; db_size = 10; tps = 1.; actions = 1 }
  in
  (* Disconnect after 5 simulated seconds, stay off for a long trip. *)
  let mobility = Connectivity.day_cycle ~connected:5. ~disconnected:100_000. in
  let bank =
    Two_tier.create ~initial_value:1000. ~acceptance:Acceptance.Non_negative
      ~mobility ~base_nodes:1 params ~seed:7
  in
  let clock = (Two_tier.base bank).Common.clock in
  let account = Oid.of_int 0 in
  let balance () = Fstore.read (Two_tier.base bank).Common.stores.(0) account in
  Printf.printf "opening balance: $%.2f\n" (balance ());

  (* Let the mobile node go offline. *)
  Clock.run clock ~until:100_010.;
  let laptop = 1 in

  (* Two tentative checks against the same $1000. *)
  Two_tier.submit bank ~node:laptop (Commutative.debit account 800.);
  Two_tier.submit bank ~node:laptop (Commutative.debit account 800.);
  let laptop_view =
    Fstore.read
      (Dangers_core.Mobile_node.tentative_store (Two_tier.mobile bank ~node:laptop))
      account
  in
  Printf.printf
    "laptop wrote two tentative $800 checks while offline; it sees $%.2f\n"
    laptop_view;

  (* Reconnect: the bank replays both in commit order. *)
  Two_tier.quiesce_and_sync bank;
  Printf.printf "checks cleared: %d, bounced: %d\n"
    (Two_tier.tentative_accepted bank)
    (Two_tier.tentative_rejected bank);
  List.iter
    (fun (_, reason) -> Printf.printf "bank says: %s\n" reason)
    (Two_tier.rejection_log bank);
  Printf.printf "final balance at the bank: $%.2f\n" (balance ());
  Printf.printf "all replicas converged: %b\n" (Two_tier.converged bank)
